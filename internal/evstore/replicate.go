package evstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/evserve"
	"repro/internal/obs"
)

// WAL shipping: the replication layer that turns N independent seedd
// stores into a fleet that survives losing any replica.
//
// The leader side is ReplicationRead/ServeReplication: a follower asks
// for WAL bytes from (generation, offset) and gets back either the raw
// framed bytes it is missing — the exact bytes the leader's own crash
// recovery trusts, CRC frames included — or, when its offsets are stale
// (leader restarted, WAL rotated by compaction), a full dump of the live
// set under the current generation. Offsets are only ever interpreted
// against a matching generation, so WAL rotation can never cause a
// follower to read new bytes at old positions.
//
// The follower side is Tailer: a loop that polls a peer, consumes only
// complete CRC-valid frames (a truncated body or flipped bit costs a
// re-poll, never a bad record), applies records it does not already hold
// into its own store, and resumes at the frame boundary it last trusted.
// Because the follower re-frames records through its own Append, its
// store is exactly as crash-safe as a leader's — a follower promoted by
// the router serves the dead leader's shard from its own durable state,
// with zero LLM calls.

// Replication HTTP headers. The body of a replication response is raw
// framed records; these carry the stream position metadata.
const (
	// HeaderReplicateGen is the WAL generation the body's offsets belong to.
	HeaderReplicateGen = "X-Replicate-Gen"
	// HeaderReplicateNext is the offset a follower should poll next after
	// consuming the entire body (followers that consume a prefix compute
	// their own next offset from bytes actually consumed).
	HeaderReplicateNext = "X-Replicate-Next"
	// HeaderReplicateFull marks a full live-set dump: the body replaces
	// incremental catch-up and Next is the current WAL end.
	HeaderReplicateFull = "X-Replicate-Full"
	// HeaderReplicateLen is the exact body length the leader sent. A
	// truncated body that happens to end on a frame boundary is otherwise
	// indistinguishable from a complete one — and a follower that trusts
	// a boundary-truncated full dump would adopt the leader's end offset
	// while silently missing the dump's tail.
	HeaderReplicateLen = "X-Replicate-Len"
)

// maxReplicationChunk bounds one incremental replication response.
const maxReplicationChunk = 4 << 20

// Chunk is one replication response: Data holds framed records; when Full
// is set they are a complete live-set dump (offsets restart at Next under
// Gen), otherwise they are WAL bytes [From, From+len(Data)) of Gen.
type Chunk struct {
	Gen  int64
	From int64
	Next int64
	Full bool
	Data []byte
}

// ReplicationRead serves one follower poll against this store's WAL.
// gen/from are the follower's position; a mismatched generation or
// out-of-range offset downgrades to a full dump — correctness never
// depends on the follower's bookkeeping, only progress does.
func (s *Store) ReplicationRead(gen, from int64, maxBytes int) (Chunk, error) {
	if maxBytes <= 0 || maxBytes > maxReplicationChunk {
		maxBytes = maxReplicationChunk
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Chunk{}, ErrClosed
	}
	// Expose everything accepted so far: replication lag should be one
	// poll interval, not one FlushEvery batch.
	if err := s.flushLocked(); err != nil {
		return Chunk{}, err
	}
	if gen != s.walGen || from < 0 || from > s.walBytes {
		dump, err := s.encodeLiveSetLocked()
		if err != nil {
			return Chunk{}, err
		}
		// The dump covers every record in the live set, which includes
		// every record in the current WAL — so the follower resumes at the
		// WAL's end, not at zero.
		return Chunk{Gen: s.walGen, From: 0, Next: s.walBytes, Full: true, Data: dump}, nil
	}
	end := s.walBytes
	if end > from+int64(maxBytes) {
		end = from + int64(maxBytes)
	}
	buf := make([]byte, end-from)
	if len(buf) > 0 {
		// ReadAt (pread) leaves the writer's file offset alone, and s.mu
		// excludes rotation, so the read window is stable.
		if _, err := s.wal.ReadAt(buf, from); err != nil {
			return Chunk{}, fmt.Errorf("evstore: replication read: %w", err)
		}
	}
	return Chunk{Gen: s.walGen, From: from, Next: end, Data: buf}, nil
}

// encodeLiveSetLocked frames the entire live set for a full dump.
// Callers must hold s.mu.
func (s *Store) encodeLiveSetLocked() ([]byte, error) {
	keys := make([]evserve.Key, 0, len(s.records))
	for k := range s.records {
		keys = append(keys, k)
	}
	sortKeys(keys)
	var out []byte
	for _, k := range keys {
		e := s.records[k]
		line, err := encodeRecord(record{
			DB: k.DB, Variant: k.Variant, QHash: k.QHash,
			Evidence: e.Evidence, Trace: e.Trace,
		})
		if err != nil {
			return nil, fmt.Errorf("evstore: %w", err)
		}
		out = append(out, line...)
	}
	return out, nil
}

// ServeReplication is the leader-side HTTP handler for GET
// /v1/replicate?gen=<gen>&from=<offset>. seedd mounts it; Tailer is its
// client.
func (s *Store) ServeReplication(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gen, _ := strconv.ParseInt(q.Get("gen"), 10, 64)
	from, _ := strconv.ParseInt(q.Get("from"), 10, 64)
	maxBytes := 0
	if v := q.Get("max"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			maxBytes = n
		}
	}
	chunk, err := s.ReplicationRead(gen, from, maxBytes)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderReplicateGen, strconv.FormatInt(chunk.Gen, 10))
	h.Set(HeaderReplicateNext, strconv.FormatInt(chunk.Next, 10))
	h.Set(HeaderReplicateLen, strconv.Itoa(len(chunk.Data)))
	if chunk.Full {
		h.Set(HeaderReplicateFull, "1")
	}
	_, _ = w.Write(chunk.Data)
}

// scanFrames walks the complete, CRC-valid frames at the head of data,
// calling fn for each decoded record. It returns how many bytes those
// frames span — a torn final frame (no newline yet) or a corrupt frame
// stops the scan without consuming it, so a caller resuming at
// from+consumed always lands on a frame boundary.
func scanFrames(data []byte, fn func(record)) (consumed int) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: wait for the rest
		}
		rec, ok := decodeRecord(data[off : off+nl])
		if !ok {
			break // corrupt frame: do not consume it or anything after
		}
		fn(rec)
		off += nl + 1
	}
	return off
}

// TailerOptions configures a Tailer.
type TailerOptions struct {
	// Interval is the poll period; <= 0 defaults to 200ms. A poll that
	// consumed a full chunk re-polls immediately — catch-up is bounded by
	// bandwidth, not by the poll interval.
	Interval time.Duration
	// Client is the HTTP client for polls; nil uses a 10s-timeout default.
	Client *http.Client
	// MaxBytes bounds one poll's chunk; 0 uses the server default.
	MaxBytes int
	// Apply, when non-nil, observes every record actually applied to the
	// store — seedd uses it to inject replicated evidence into the serving
	// cache so a promoted follower answers from memory.
	Apply func(k evserve.Key, e evserve.Entry)
}

// tailerStallLimit is how many consecutive zero-progress polls (with a
// non-empty body) the Tailer tolerates before discarding its position and
// forcing a full resync.
const tailerStallLimit = 3

// Tailer replicates one peer's store into a local store by tailing its
// WAL over HTTP. Construct with NewTailer, drive with Run.
type Tailer struct {
	source string
	store  *Store
	opts   TailerOptions
	// requestID identifies this tailer's replication stream in the peer's
	// request logs (every poll carries it as X-Request-Id).
	requestID string

	mu   sync.Mutex
	gen  int64
	next int64
	// stalls counts consecutive polls that returned bytes but yielded no
	// complete valid frame; tailerStallLimit of them force a resync.
	stalls int

	polls      atomic.Int64
	applied    atomic.Int64
	duplicates atomic.Int64
	resyncs    atomic.Int64
	errors     atomic.Int64
}

// NewTailer builds a tailer that replicates from the peer named by source
// into the local store. source is either a replica base URL (e.g.
// "http://127.0.0.1:8081" — the standard /v1/replicate path is appended)
// or a full replication URL carrying its own query parameters (e.g.
// ".../v1/replicate?corpus=bird" for seedd's corpus-scoped endpoint).
func NewTailer(source string, store *Store, opts TailerOptions) *Tailer {
	if opts.Interval <= 0 {
		opts.Interval = 200 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	// gen 0 never matches a real generation (they are UnixNano stamps), so
	// the first poll always receives a full dump — a fresh follower needs
	// the history, not just new bytes.
	return &Tailer{source: source, store: store, opts: opts, requestID: "tail-" + obs.NewRequestID()}
}

// Run polls until ctx is cancelled. Transient errors (peer down, torn
// responses) are counted and retried on the next tick; the loop itself
// never gives up — a peer that died may come back, and the ring router
// owns the decision to stop caring about one.
func (t *Tailer) Run(ctx context.Context) {
	tick := time.NewTicker(t.opts.Interval)
	defer tick.Stop()
	for {
		progress, err := t.Poll(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			t.errors.Add(1)
		}
		if progress {
			// More bytes may be waiting; drain without sleeping.
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// Poll performs one replication round trip. It reports whether it
// consumed a full chunk (meaning more data is likely waiting).
func (t *Tailer) Poll(ctx context.Context) (progress bool, err error) {
	t.polls.Add(1)
	t.mu.Lock()
	gen, from := t.gen, t.next
	t.mu.Unlock()

	base, sep := t.source, "?"
	if strings.Contains(base, "?") {
		// The source already names an endpoint with parameters (e.g. a
		// corpus-scoped ...?corpus=bird); just extend its query.
		sep = "&"
	} else {
		base += "/v1/replicate"
	}
	url := fmt.Sprintf("%s%sgen=%d&from=%d", base, sep, gen, from)
	if t.opts.MaxBytes > 0 {
		url += fmt.Sprintf("&max=%d", t.opts.MaxBytes)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	// Each poll is its own trace; the request ID is stable per tailer so a
	// leader's request log groups one follower's whole replication stream.
	obs.Inject(req.Header, obs.NewTraceID(), "")
	req.Header.Set(obs.RequestIDHeader, t.requestID)
	resp, err := t.opts.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("evstore: replication poll: peer answered %d", resp.StatusCode)
	}
	respGen, _ := strconv.ParseInt(resp.Header.Get(HeaderReplicateGen), 10, 64)
	respNext, _ := strconv.ParseInt(resp.Header.Get(HeaderReplicateNext), 10, 64)
	respLen, _ := strconv.ParseInt(resp.Header.Get(HeaderReplicateLen), 10, 64)
	full := resp.Header.Get(HeaderReplicateFull) == "1"
	// Read the body leniently: a chaos-truncated stream still yields its
	// valid prefix, and scanFrames refuses anything mid-frame.
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, maxReplicationChunk+1))

	applyErr := error(nil)
	consumed := scanFrames(body, func(rec record) {
		if applyErr != nil {
			return
		}
		applyErr = t.apply(rec)
	})
	if applyErr != nil {
		return false, applyErr
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case full:
		if readErr == nil && consumed == len(body) && int64(len(body)) == respLen {
			// Complete dump applied: adopt the leader's position wholesale.
			// The length check matters: a truncation that lands exactly on
			// a frame boundary parses cleanly but is still missing the
			// dump's tail.
			t.gen, t.next, t.stalls = respGen, respNext, 0
		}
		// An incomplete dump keeps the old (mismatched) position, so the
		// next poll fetches the whole dump again — applying a prefix twice
		// is idempotent.
		return false, readErr
	case consumed > 0:
		t.next += int64(consumed)
		t.stalls = 0
		// A chunk consumed to exactly the advertised end means we are
		// caught up; anything less means more bytes are waiting.
		return t.next < respNext || readErr != nil, readErr
	case len(body) > 0:
		// Bytes arrived but not one frame survived. Transport damage heals
		// on re-poll; a genuinely poisoned position does not — after a few
		// stalls, throw the position away and resync from a dump.
		t.stalls++
		if t.stalls >= tailerStallLimit {
			t.gen, t.next, t.stalls = 0, 0, 0
			t.resyncs.Add(1)
		}
		return false, readErr
	default:
		return false, readErr
	}
}

// apply lands one replicated record in the local store unless an
// identical entry is already present. The identity check is what makes
// full-mesh topologies converge: without it every replica would re-append
// (and re-ship) every record it hears, forever.
func (t *Tailer) apply(rec record) error {
	k := evserve.Key{DB: rec.DB, Variant: rec.Variant, QHash: rec.QHash}
	e := evserve.Entry{Evidence: rec.Evidence, Trace: rec.Trace}
	if cur, ok := t.store.Get(k); ok && cur.Evidence == e.Evidence && reflect.DeepEqual(cur.Trace, e.Trace) {
		t.duplicates.Add(1)
		return nil
	}
	if err := t.store.Append(k, e); err != nil {
		return err
	}
	t.applied.Add(1)
	if t.opts.Apply != nil {
		t.opts.Apply(k, e)
	}
	return nil
}

// TailerStats is the /metrics view of one replication stream.
type TailerStats struct {
	// Source is the peer base URL this tailer replicates from.
	Source string `json:"source"`
	// Gen and Next are the current stream position.
	Gen  int64 `json:"gen"`
	Next int64 `json:"next"`
	// Polls counts replication round trips; Applied counts records landed
	// in the local store; Duplicates counts records skipped because an
	// identical entry was already present.
	Polls      int64 `json:"polls"`
	Applied    int64 `json:"applied"`
	Duplicates int64 `json:"duplicates"`
	// Resyncs counts full-dump restarts forced by repeated zero-progress
	// polls; Errors counts failed polls (peer down, torn responses).
	Resyncs int64 `json:"resyncs"`
	Errors  int64 `json:"errors"`
}

// Stats snapshots the tailer's counters.
func (t *Tailer) Stats() TailerStats {
	t.mu.Lock()
	gen, next := t.gen, t.next
	t.mu.Unlock()
	return TailerStats{
		Source:     t.source,
		Gen:        gen,
		Next:       next,
		Polls:      t.polls.Load(),
		Applied:    t.applied.Load(),
		Duplicates: t.duplicates.Load(),
		Resyncs:    t.resyncs.Load(),
		Errors:     t.errors.Load(),
	}
}
