package evstore

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/evserve"
)

// openLeaderFollower builds a leader store with an HTTP replication
// endpoint and an empty follower store.
func openLeaderFollower(t *testing.T) (leader *Store, follower *Store, leaderURL string) {
	t.Helper()
	var err error
	leader, err = Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatalf("opening leader: %v", err)
	}
	t.Cleanup(func() { leader.Close() })
	follower, err = Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatalf("opening follower: %v", err)
	}
	t.Cleanup(func() { follower.Close() })
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replicate", leader.ServeReplication)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return leader, follower, srv.URL
}

func appendN(t *testing.T, s *Store, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		k := evserve.KeyFor("db", "seed", fmt.Sprintf("question %d", i))
		if err := s.Append(k, evserve.Entry{Evidence: fmt.Sprintf("evidence %d", i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// drain polls the tailer until the follower holds want records or the
// deadline passes.
func drain(t *testing.T, tl *Tailer, follower *Store, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for follower.Len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d of %d records (tailer %+v)", follower.Len(), want, tl.Stats())
		}
		if _, err := tl.Poll(context.Background()); err != nil {
			t.Fatalf("poll: %v", err)
		}
	}
}

// assertMirror checks the follower holds exactly the leader's live set.
func assertMirror(t *testing.T, leader, follower *Store) {
	t.Helper()
	if leader.Len() != follower.Len() {
		t.Fatalf("leader has %d records, follower %d", leader.Len(), follower.Len())
	}
	err := leader.Load(func(k evserve.Key, e evserve.Entry) {
		got, ok := follower.Get(k)
		if !ok {
			t.Fatalf("follower missing key %+v", k)
		}
		if got.Evidence != e.Evidence {
			t.Fatalf("key %+v: leader evidence %q, follower %q", k, e.Evidence, got.Evidence)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReplicationCatchUpAndLiveTail is the basic shipping contract: a
// fresh follower full-syncs the history, then tails new appends
// incrementally — without re-receiving the history it already holds.
func TestReplicationCatchUpAndLiveTail(t *testing.T) {
	leader, follower, url := openLeaderFollower(t)
	appendN(t, leader, 0, 100)

	tl := NewTailer(url, follower, TailerOptions{})
	drain(t, tl, follower, 100)
	assertMirror(t, leader, follower)
	afterCatchUp := tl.Stats().Applied

	appendN(t, leader, 100, 50)
	drain(t, tl, follower, 150)
	assertMirror(t, leader, follower)
	st := tl.Stats()
	if st.Applied != afterCatchUp+50 {
		t.Fatalf("live tail applied %d records for 50 new appends — history was re-shipped", st.Applied-afterCatchUp)
	}
	if st.Resyncs != 0 {
		t.Fatalf("healthy stream forced %d resyncs", st.Resyncs)
	}
}

// TestReplicationAppliesThroughCallback pins the cache-injection hook:
// every record landed in the follower store is also observed by Apply.
func TestReplicationAppliesThroughCallback(t *testing.T) {
	leader, follower, url := openLeaderFollower(t)
	appendN(t, leader, 0, 25)
	var seen atomic.Int64
	tl := NewTailer(url, follower, TailerOptions{
		Apply: func(k evserve.Key, e evserve.Entry) { seen.Add(1) },
	})
	drain(t, tl, follower, 25)
	if seen.Load() != 25 {
		t.Fatalf("Apply observed %d of 25 applied records", seen.Load())
	}
}

// TestReplicationSurvivesLeaderCompaction: a WAL rotation invalidates the
// follower's byte offsets; the generation check must convert that into a
// clean full-dump resync, not silent misreads.
func TestReplicationSurvivesLeaderCompaction(t *testing.T) {
	leader, follower, url := openLeaderFollower(t)
	appendN(t, leader, 0, 40)
	tl := NewTailer(url, follower, TailerOptions{})
	drain(t, tl, follower, 40)

	appendN(t, leader, 40, 10)
	if err := leader.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	appendN(t, leader, 50, 10)
	drain(t, tl, follower, 60)
	assertMirror(t, leader, follower)
}

// TestReplicationSurvivesLeaderRestart: the leader reopening its store
// (crash recovery) retires the generation; the follower resyncs and
// converges on the post-restart state.
func TestReplicationSurvivesLeaderRestart(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, leader, 0, 30)

	var current atomic.Pointer[Store]
	current.Store(leader)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replicate", func(w http.ResponseWriter, r *http.Request) {
		current.Load().ServeReplication(w, r)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	follower, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.Close() })
	tl := NewTailer(srv.URL, follower, TailerOptions{})
	drain(t, tl, follower, 30)

	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	leader2, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatalf("leader restart: %v", err)
	}
	t.Cleanup(func() { leader2.Close() })
	current.Store(leader2)
	appendN(t, leader2, 30, 20)
	drain(t, tl, follower, 50)
	assertMirror(t, leader2, follower)
}

// TestReplicationTornBodies: a flaky transport that truncates most
// responses mid-frame must cost retries, never corrupt records — the
// follower converges byte-exact and stays openable.
func TestReplicationTornBodies(t *testing.T) {
	leader, follower, url := openLeaderFollower(t)
	appendN(t, leader, 0, 60)

	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replicate", func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		leader.ServeReplication(rec, r)
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		body := rec.Body.Bytes()
		// Two of every three responses lose the second half of their body,
		// tearing whatever frame straddles the cut.
		if calls.Add(1)%3 != 0 && len(body) > 1 {
			body = body[:len(body)/2]
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(body)
	})
	flaky := httptest.NewServer(mux)
	t.Cleanup(flaky.Close)
	_ = url

	tl := NewTailer(flaky.URL, follower, TailerOptions{MaxBytes: 4096})
	drain(t, tl, follower, 60)
	assertMirror(t, leader, follower)

	// The shipped store must be as crash-safe as a written one.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(follower.Dir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatalf("reopening follower after torn-stream replication: %v", err)
	}
	defer re.Close()
	if re.Stats().TailDropped != 0 {
		t.Fatalf("follower WAL held %d corrupt frames — torn network bytes reached disk", re.Stats().TailDropped)
	}
	if re.Len() != 60 {
		t.Fatalf("follower reopened with %d of 60 records", re.Len())
	}
}

// TestReplicationNoDoubleApply: identical records arriving twice (re-polls
// after stalls, overlapping dumps, full-mesh echo) are skipped, not
// re-appended — the duplicates counter proves the dedup path ran.
func TestReplicationNoDoubleApply(t *testing.T) {
	leader, follower, url := openLeaderFollower(t)
	appendN(t, leader, 0, 20)
	tl := NewTailer(url, follower, TailerOptions{})
	drain(t, tl, follower, 20)

	// Force a resync: the full dump re-delivers all 20 records.
	tl.mu.Lock()
	tl.gen, tl.next = 0, 0
	tl.mu.Unlock()
	if _, err := tl.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := tl.Stats()
	if st.Applied != 20 {
		t.Fatalf("re-delivered dump re-applied records: applied %d, want 20", st.Applied)
	}
	if st.Duplicates != 20 {
		t.Fatalf("dedup skipped %d of 20 re-delivered records", st.Duplicates)
	}
	if got := follower.Stats().Appends; got != 20 {
		t.Fatalf("follower WAL holds %d appends, want 20 — duplicates were persisted", got)
	}
}

// TestReplicationFullMeshConverges wires two stores to tail each other;
// writes on both sides propagate everywhere and the mesh quiesces instead
// of echoing records back and forth.
func TestReplicationFullMeshConverges(t *testing.T) {
	a, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := Open(t.TempDir(), Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	serve := func(s *Store) string {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/replicate", s.ServeReplication)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv.URL
	}
	urlA, urlB := serve(a), serve(b)

	appendN(t, a, 0, 15)
	for i := 100; i < 115; i++ {
		k := evserve.KeyFor("db", "seed", fmt.Sprintf("question %d", i))
		if err := b.Append(k, evserve.Entry{Evidence: fmt.Sprintf("evidence %d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	tlAB := NewTailer(urlA, b, TailerOptions{}) // b tails a
	tlBA := NewTailer(urlB, a, TailerOptions{}) // a tails b
	deadline := time.Now().Add(5 * time.Second)
	for a.Len() < 30 || b.Len() < 30 {
		if time.Now().After(deadline) {
			t.Fatalf("mesh stuck: a=%d b=%d", a.Len(), b.Len())
		}
		if _, err := tlAB.Poll(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := tlBA.Poll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	assertMirror(t, a, b)

	// Quiescence: with no new writes, further polls must apply nothing —
	// an echo loop here would grow both WALs forever.
	appliedA, appliedB := tlBA.Stats().Applied, tlAB.Stats().Applied
	for i := 0; i < 5; i++ {
		if _, err := tlAB.Poll(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := tlBA.Poll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if tlBA.Stats().Applied != appliedA || tlAB.Stats().Applied != appliedB {
		t.Fatalf("quiet mesh kept applying records: a tailer %+v, b tailer %+v", tlBA.Stats(), tlAB.Stats())
	}
}

// TestReplicationRunLoopStopsOnCancel pins that the background loop honors
// context cancellation (seedd's shutdown path).
func TestReplicationRunLoopStopsOnCancel(t *testing.T) {
	leader, follower, url := openLeaderFollower(t)
	appendN(t, leader, 0, 10)
	tl := NewTailer(url, follower, TailerOptions{Interval: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		tl.Run(ctx)
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for follower.Len() < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if follower.Len() != 10 {
		t.Fatalf("background tailer replicated %d of 10 records", follower.Len())
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}
