package evstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/evserve"
)

// populate writes n sequentially keyed records through a store and closes
// it, returning the keys in append order.
func populate(t *testing.T, dir string, n int) []evserve.Key {
	t.Helper()
	s, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]evserve.Key, n)
	for i := range keys {
		keys[i] = evserve.KeyFor("db", "v", strings.Repeat("q", i+1))
		if err := s.Append(keys[i], testEntry(strings.Repeat("e", i+1), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return keys
}

// TestWALCorruptionRecovery is the durability contract under damage:
// whatever happens to the tail of the log, Open recovers the longest
// valid prefix, reports what it dropped, and leaves the WAL appendable.
func TestWALCorruptionRecovery(t *testing.T) {
	const total = 6
	tests := []struct {
		name string
		// corrupt mutates the on-disk WAL after a clean shutdown.
		corrupt func(t *testing.T, wal string)
		// wantRecords is how many of the appended records must survive.
		wantRecords int
		// wantDropped is the TailDropped count Open must report.
		wantDropped int
	}{
		{
			name: "truncated tail record",
			corrupt: func(t *testing.T, wal string) {
				data := readWAL(t, wal)
				// Chop the last record in half: the newline (and half the
				// payload) never made it to disk.
				lines := bytes.SplitAfter(data, []byte{'\n'})
				last := lines[len(lines)-2] // final element is the empty tail after the last \n
				writeWAL(t, wal, data[:len(data)-len(last)/2-1])
			},
			wantRecords: total - 1,
			wantDropped: 1,
		},
		{
			name: "crc mismatch mid-file",
			corrupt: func(t *testing.T, wal string) {
				data := readWAL(t, wal)
				lines := bytes.SplitAfter(data, []byte{'\n'})
				// Flip one payload byte in the third record; its CRC no
				// longer matches, so it and everything after it is
				// untrusted.
				idx := len(lines[0]) + len(lines[1]) + 20
				data[idx] ^= 0xff
				writeWAL(t, wal, data)
			},
			wantRecords: 2,
			wantDropped: total - 2,
		},
		{
			name: "bad frame mid-file",
			corrupt: func(t *testing.T, wal string) {
				data := readWAL(t, wal)
				lines := bytes.SplitAfter(data, []byte{'\n'})
				var out []byte
				out = append(out, lines[0]...)
				out = append(out, []byte("not a framed record\n")...)
				for _, l := range lines[2:] {
					out = append(out, l...)
				}
				writeWAL(t, wal, out)
			},
			wantRecords: 1,
			wantDropped: total - 1,
		},
		{
			name:        "wal deleted entirely",
			corrupt:     func(t *testing.T, wal string) { os.Remove(wal) },
			wantRecords: 0,
			wantDropped: 0,
		},
		{
			name:        "wal emptied",
			corrupt:     func(t *testing.T, wal string) { writeWAL(t, wal, nil) },
			wantRecords: 0,
			wantDropped: 0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			keys := populate(t, dir, total)
			tc.corrupt(t, filepath.Join(dir, walFile))

			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open over corrupt WAL: %v", err)
			}
			got := loadAll(t, s)
			if len(got) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", len(got), tc.wantRecords)
			}
			// The surviving records are exactly the prefix, intact.
			for i := 0; i < tc.wantRecords; i++ {
				e, ok := got[keys[i]]
				if !ok {
					t.Fatalf("prefix record %d missing after recovery", i)
				}
				if want := strings.Repeat("e", i+1); e.Evidence != want {
					t.Fatalf("record %d evidence = %q, want %q", i, e.Evidence, want)
				}
				if e.Trace == nil || len(e.Trace.Stages) != 2 {
					t.Fatalf("record %d lost its trace in recovery: %+v", i, e.Trace)
				}
			}
			if st := s.Stats(); st.TailDropped != tc.wantDropped {
				t.Fatalf("TailDropped = %d, want %d", st.TailDropped, tc.wantDropped)
			}

			// The WAL was truncated to the valid prefix, so the store is
			// appendable: a fresh write lands cleanly after another cycle.
			nk := evserve.KeyFor("db", "v", "appended-after-recovery")
			if err := s.Append(nk, testEntry("fresh", 9)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if st := r.Stats(); st.TailDropped != 0 {
				t.Fatalf("second reopen still drops %d records — recovery did not repair the log", st.TailDropped)
			}
			if got := loadAll(t, r); len(got) != tc.wantRecords+1 || got[nk].Evidence != "fresh" {
				t.Fatalf("post-recovery append not durable: %d records", len(got))
			}
		})
	}
}

// TestSnapshotCorruptionRecovery covers the snapshot side: an empty,
// missing, or tail-corrupt snapshot degrades to the longest valid prefix
// plus whatever the WAL still holds.
func TestSnapshotCorruptionRecovery(t *testing.T) {
	setup := func(t *testing.T) (dir string, keys []evserve.Key) {
		dir = t.TempDir()
		s, err := Open(dir, Options{CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		keys = make([]evserve.Key, 4)
		for i := range keys {
			keys[i] = evserve.KeyFor("db", "v", strings.Repeat("s", i+1))
			if err := s.Append(keys[i], testEntry(strings.Repeat("E", i+1), int64(i+1))); err != nil {
				t.Fatal(err)
			}
		}
		// Move everything into the snapshot, then add two WAL-only records.
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			k := evserve.KeyFor("db", "v", strings.Repeat("w", i+1))
			keys = append(keys, k)
			if err := s.Append(k, testEntry("wal-entry", int64(i+10))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, keys
	}

	tests := []struct {
		name        string
		corrupt     func(t *testing.T, snap string)
		wantRecords int // surviving entries across snapshot + WAL
		wantDropped int
	}{
		{
			name:        "missing snapshot keeps wal tail",
			corrupt:     func(t *testing.T, snap string) { os.Remove(snap) },
			wantRecords: 2,
			wantDropped: 0,
		},
		{
			name:        "empty snapshot keeps wal tail",
			corrupt:     func(t *testing.T, snap string) { writeWAL(t, snap, nil) },
			wantRecords: 2,
			wantDropped: 0,
		},
		{
			name: "snapshot tail truncated mid-record",
			corrupt: func(t *testing.T, snap string) {
				data := readWAL(t, snap)
				writeWAL(t, snap, data[:len(data)-10])
			},
			wantRecords: 3 + 2, // 3 intact snapshot records + 2 WAL records
			wantDropped: 1,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir, _ := setup(t)
			tc.corrupt(t, filepath.Join(dir, snapshotFile))
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open over corrupt snapshot: %v", err)
			}
			defer s.Close()
			if got := loadAll(t, s); len(got) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", len(got), tc.wantRecords)
			}
			if st := s.Stats(); st.TailDropped != tc.wantDropped {
				t.Fatalf("TailDropped = %d, want %d", st.TailDropped, tc.wantDropped)
			}
		})
	}
}

func readWAL(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeWAL(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
