//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd)

package evstore

import "os"

// lockFile is a no-op on platforms without flock semantics: the
// one-process-per-directory rule stays documented but unenforced there.
func lockFile(*os.File) error { return nil }
