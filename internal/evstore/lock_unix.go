// The constraint lists the flock(2) platforms explicitly: the broader
// "unix" tag would pull in solaris/aix, where syscall.Flock is undefined.
//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package evstore

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f. The kernel
// releases it on any process death — including SIGKILL — so crash
// recovery never meets a stale lock.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
