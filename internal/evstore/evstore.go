// Package evstore is the durability layer under the evidence cache: a
// crash-safe, append-only store that lets generated SEED evidence (and its
// stage-graph provenance) survive process death. The paper's practicality
// claim is that evidence is generated once and reused across queries and
// sessions; without a durable store every seedd restart throws the evserve
// cache away and re-pays the full LLM round-trip cost for every question.
//
// On disk a store is one directory holding two files (plus a transient
// third while a compaction is in flight):
//
//	wal.evs       append-only JSON-lines write-ahead log, one CRC-framed
//	              record per accepted evidence entry
//	snapshot.evs  the compacted live set (latest entry per key), same
//	              framing, rewritten atomically by compaction
//	wal.tail.evs  the previous WAL generation, rotated out at the start
//	              of a compaction; removed once the snapshot lands
//
// Every line is "crc8hex payload\n" where the CRC is the Castagnoli CRC-32
// of the payload bytes. Open replays snapshot, then tail, then WAL, newest
// record per key winning; replay stops at the first torn or corrupt
// record, recovering the longest valid prefix, and Open truncates the WAL
// back to that prefix so subsequent appends never interleave with garbage.
//
// Compaction runs off the append path: crossing Options.CompactEvery
// rotates the WAL to wal.tail.evs under the lock (cheap) and writes the
// staged live set to a temp snapshot in the background, fsyncs, renames it
// over the old snapshot, and only then removes the tail. Every crash
// point is recoverable — the worst case is a surviving tail whose records
// the snapshot already holds, which the next Open replays idempotently
// and absorbs into a fresh snapshot.
//
// A Store is safe for concurrent use by one process. Two processes must
// not open the same directory at once: appends from separate file handles
// would interleave mid-frame.
package evstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/evserve"
	"repro/internal/pipeline"
)

// File names inside a store directory. walTailFile exists only while a
// compaction is in flight (or after a crash interrupted one): it is the
// previous WAL generation, rotated out so appends continue into a fresh
// WAL while the snapshot is written in the background. lockFile carries
// the advisory flock that enforces one process per directory, and
// manifestFile stamps the corpus identity the records were built from.
const (
	walFile      = "wal.evs"
	walTailFile  = "wal.tail.evs"
	snapshotFile = "snapshot.evs"
	lockFileName = "lock"
	manifestFile = "manifest"
)

// ErrClosed is returned by Append and Flush after Close.
var ErrClosed = errors.New("evstore: store closed")

// Manifest renders the canonical corpus-identity stamp every tool in this
// repository writes (seedd, seedgen, the experiment drivers, storebench),
// so a store produced by one opens cleanly in the others. Byte equality
// is load-bearing — Open refuses a store whose stamp differs — which is
// why the string is built in exactly one place.
func Manifest(corpus string, seed uint64) string {
	return fmt.Sprintf("corpus=%s seed=%d", corpus, seed)
}

// castagnoli is the CRC-32C table used to frame every record.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Store.
type Options struct {
	// CompactEvery triggers a snapshot compaction once this many records
	// have accumulated in the WAL; 0 defaults to 1024, negative disables
	// automatic compaction (Compact can still be called explicitly).
	CompactEvery int
	// FlushEvery batches buffered WAL appends: the writer is flushed to
	// the OS every FlushEvery records. 0 or 1 flushes per append — the
	// crash-safe default — so a SIGKILL loses at most the record being
	// written. Values > 1 trade tail-loss risk for fewer write syscalls;
	// Flush (which evserve.Service.Close calls) drains the batch.
	FlushEvery int
	// Sync additionally fsyncs the WAL after every flush and the store
	// directory after every rename/create/remove, extending durability
	// from process death to power loss. Off by default.
	Sync bool
	// Manifest identifies the corpus the evidence was generated from
	// (e.g. "corpus=bird seed=7"). A fresh store is stamped with it; a
	// re-opened store whose stamp differs refuses to open, because cache
	// keys hash only question *text* — replaying a store built from a
	// different corpus generation would serve stale evidence as hits.
	// Empty skips the check.
	Manifest string
}

// record is the on-disk JSON payload: the full cache key plus the entry.
// QHash is persisted rather than recomputed because evserve hashes the
// whole (db, variant, question) triple and the question text itself is not
// stored — the store never needs it, only the key the cache will look up.
type record struct {
	DB       string          `json:"db"`
	Variant  string          `json:"variant"`
	QHash    uint64          `json:"qhash"`
	Evidence string          `json:"evidence"`
	Trace    *pipeline.Trace `json:"trace,omitempty"`
}

// Store is a durable evidence store. Construct with Open; the zero value
// is not usable. It implements evserve.Store.
type Store struct {
	dir  string
	opts Options

	mu         sync.Mutex
	lock       *os.File // holds the directory flock for the store's lifetime
	wal        *os.File
	w          *bufio.Writer
	pending    int // appends buffered since the last flush
	walRecords int // records in the current WAL generation
	records    map[evserve.Key]evserve.Entry
	closed     bool
	// walValidLen is the byte length of the longest valid prefix of the
	// last file replayFile scanned; Open uses it to truncate a corrupt
	// WAL tail back to a record boundary.
	walValidLen int64

	// walGen identifies the current WAL byte stream for replication: a
	// follower's byte offset is only meaningful against the generation it
	// was read from. Open stamps a fresh generation and every rotation
	// (compaction) bumps it, so a follower holding offsets into a file
	// that no longer exists detects the fact and resyncs from a full dump
	// instead of misreading reused offsets.
	walGen int64
	// walWritten counts bytes accepted into the current WAL (including
	// bytes still in the bufio buffer); walBytes counts bytes flushed to
	// the OS — the replication-visible prefix. ReplicationRead never
	// serves past walBytes, because buffered bytes can still be lost to a
	// crash and a follower must not get ahead of the leader's own
	// durability.
	walWritten int64
	walBytes   int64

	// compacting marks a background compaction in flight; compactDone is
	// that compaction's completion latch, non-nil exactly while one runs.
	// A channel per generation (rather than one reused WaitGroup) lets
	// Flush, Compact and Close wait outside s.mu without racing a
	// concurrent Append's Add against a returning Wait.
	compacting  bool
	compactDone chan struct{}

	appends         int64
	compactions     int64
	compactErrors   int64
	tailDropped     int
	snapshotRecords int
	snapshotAt      time.Time
	replay          time.Duration
}

// Open creates (or re-opens) the store rooted at dir, replaying
// snapshot + WAL to rebuild the live set. A torn or corrupt WAL tail is
// truncated away so the file ends on a record boundary before any new
// append.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 1024
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("evstore: %w", err)
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		records:    make(map[evserve.Key]evserve.Entry),
		snapshotAt: time.Now(),
	}
	// One process per directory, enforced: two writers would interleave
	// WAL frames mid-record and the damage would surface only as silently
	// dropped records on the next replay. flock is advisory but released
	// by the kernel on any process death, so crash recovery never meets a
	// stale lock.
	lf, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("evstore: %w", err)
	}
	if err := lockFile(lf); err != nil {
		lf.Close()
		return nil, fmt.Errorf("evstore: %s is in use by another process (flock: %w)", dir, err)
	}
	s.lock = lf
	ok := false
	defer func() {
		if !ok {
			lf.Close() // releases the flock
		}
	}()
	if opts.Manifest != "" {
		mPath := filepath.Join(dir, manifestFile)
		existing, merr := os.ReadFile(mPath)
		switch {
		case errors.Is(merr, os.ErrNotExist):
			if err := os.WriteFile(mPath, []byte(opts.Manifest), 0o644); err != nil {
				return nil, fmt.Errorf("evstore: %w", err)
			}
		case merr != nil:
			return nil, fmt.Errorf("evstore: %w", merr)
		case string(existing) != opts.Manifest:
			return nil, fmt.Errorf(
				"evstore: manifest mismatch: %s holds evidence for %q but this process expects %q — serving it would return stale evidence as cache hits; delete the directory to rebuild",
				dir, existing, opts.Manifest)
		}
	}
	start := time.Now()
	snapDropped, _, err := s.replayFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	s.snapshotRecords = len(s.records)
	if fi, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
		s.snapshotAt = fi.ModTime()
	}
	// A tail WAL exists only when a crash interrupted a compaction: its
	// records are newer than the snapshot and older than the current WAL,
	// so it replays in between.
	tailPath := filepath.Join(dir, walTailFile)
	tailDropped, _, err := s.replayFile(tailPath)
	if err != nil {
		return nil, err
	}
	_, tailErr := os.Stat(tailPath)
	tailExists := tailErr == nil
	walPath := filepath.Join(dir, walFile)
	walDropped, walValid, err := s.replayFile(walPath)
	if err != nil {
		return nil, err
	}
	s.walRecords = walValid
	s.tailDropped = snapDropped + tailDropped + walDropped
	s.replay = time.Since(start)

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("evstore: %w", err)
	}
	if walDropped > 0 {
		// Cut the corrupt tail so new appends start on a record boundary.
		if err := f.Truncate(s.walValidLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("evstore: truncating corrupt WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("evstore: %w", err)
	}
	s.wal = f
	s.w = bufio.NewWriter(f)
	// The WAL now ends exactly at walValidLen (the corrupt tail, if any,
	// was truncated above). Replication offsets start there, under a fresh
	// generation: offsets handed out by a previous process are invalid —
	// the torn tail may have moved the boundary — so followers of the old
	// generation full-resync rather than resume.
	s.walGen = time.Now().UnixNano()
	s.walWritten = s.walValidLen
	s.walBytes = s.walValidLen
	if opts.Sync {
		// Cover the WAL's own directory entry when Open just created it.
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("evstore: %w", err)
		}
	}
	if tailExists {
		// Finish what the crashed compaction started: the replayed state
		// already includes the tail's records, so write them straight
		// into a fresh snapshot (writeSnapshot also removes the tail).
		// The WAL keeps its records — replaying them over the new
		// snapshot on the next Open is idempotent.
		if err := s.writeSnapshot(s.records); err != nil {
			s.wal.Close()
			return nil, fmt.Errorf("evstore: absorbing interrupted compaction: %w", err)
		}
		s.snapshotRecords = len(s.records)
		s.snapshotAt = time.Now()
		s.compactions++
	}
	ok = true
	return s, nil
}

// replayFile folds one framed file into the live set, stopping at the
// first invalid record. It returns how many trailing records (torn,
// CRC-mismatched, or undecodable — plus everything after them) were
// dropped and how many valid records were applied. A missing file is an
// empty file.
func (s *Store) replayFile(path string) (dropped, valid int, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("evstore: %w", err)
	}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Torn final record: no newline made it to disk.
			dropped++
			break
		}
		line := data[off : off+nl]
		rec, ok := decodeRecord(line)
		if !ok {
			// Corrupt record: everything from here on is untrusted,
			// because frames after a bad frame may themselves be
			// mid-record garbage. Recover the longest valid prefix.
			dropped += countLines(data[off:])
			break
		}
		k := evserve.Key{DB: rec.DB, Variant: rec.Variant, QHash: rec.QHash}
		s.records[k] = evserve.Entry{Evidence: rec.Evidence, Trace: rec.Trace}
		valid++
		off += nl + 1
	}
	s.walValidLen = int64(off)
	return dropped, valid, nil
}

// syncDir fsyncs a directory, making renames, creations and removals
// inside it durable — fsyncing file contents alone does not cover the
// directory entries. Only the Sync option pays this cost.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// countLines counts newline-terminated chunks in data, counting a torn
// trailer as one more.
func countLines(data []byte) int {
	n := bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}

// encodeRecord frames one record: 8 hex CRC digits, a space, the JSON
// payload, a newline.
func encodeRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, castagnoli))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeRecord parses one framed line (without its newline), verifying
// the CRC before trusting the payload. It runs once per record on the
// startup replay path, so the frame parse avoids fmt's scan machinery.
func decodeRecord(line []byte) (record, bool) {
	var rec record
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, castagnoli) != uint32(want) {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// Append persists one cache entry write-through: it reaches the OS
// according to Options.FlushEvery and triggers compaction when the WAL
// has grown past Options.CompactEvery records. Re-appending a key
// overwrites its live value, exactly like a cache Put.
func (s *Store) Append(k evserve.Key, e evserve.Entry) error {
	line, err := encodeRecord(record{
		DB: k.DB, Variant: k.Variant, QHash: k.QHash,
		Evidence: e.Evidence, Trace: e.Trace,
	})
	if err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	s.walWritten += int64(len(line))
	s.records[k] = e
	s.appends++
	s.walRecords++
	s.pending++
	if s.pending >= s.opts.FlushEvery {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	if s.opts.CompactEvery > 0 && s.walRecords >= s.opts.CompactEvery && !s.compacting {
		// Rotate under the lock (cheap: a rename and a fresh file), write
		// the snapshot in the background — the request that crossed the
		// threshold, and every concurrent Append, never waits for a full
		// live-set rewrite. A repeat trigger while one compaction runs is
		// skipped; the WAL simply grows until the next crossing.
		staged, done, err := s.beginCompactionLocked()
		if err != nil {
			return err
		}
		go s.finishCompaction(staged, done)
	}
	return nil
}

// sortKeys orders keys deterministically (DB, then variant, then hash) —
// the one ordering both replay and snapshots use.
func sortKeys(keys []evserve.Key) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.DB != b.DB {
			return a.DB < b.DB
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.QHash < b.QHash
	})
}

// Load streams every live entry (latest per key) to fn, in a
// deterministic key order. evserve.New uses it to rebuild the evidence
// cache on startup.
func (s *Store) Load(fn func(evserve.Key, evserve.Entry)) error {
	s.mu.Lock()
	keys := make([]evserve.Key, 0, len(s.records))
	for k := range s.records {
		keys = append(keys, k)
	}
	entries := make(map[evserve.Key]evserve.Entry, len(s.records))
	for k, e := range s.records {
		entries[k] = e
	}
	s.mu.Unlock()
	sortKeys(keys)
	for _, k := range keys {
		fn(k, entries[k])
	}
	return nil
}

// Flush drains buffered appends to the OS (and to stable storage when
// Options.Sync is set), then waits for any in-flight background
// compaction — so Flush returning means the store's on-disk state is a
// complete, quiescent image of every accepted write. It is what makes
// "accepted write" mean "survives SIGKILL" for batched FlushEvery
// configurations.
func (s *Store) Flush() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	err := s.flushLocked()
	done := s.compactDone
	s.mu.Unlock()
	// Outside the lock: finishCompaction re-acquires s.mu to publish its
	// counters, so waiting under it would deadlock.
	if done != nil {
		<-done
	}
	return err
}

func (s *Store) flushLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	s.pending = 0
	s.walBytes = s.walWritten
	if s.opts.Sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("evstore: %w", err)
		}
	}
	return nil
}

// Compact rewrites the live set into a fresh snapshot and empties the
// WAL, synchronously. Safe to call at any time; Append triggers the same
// work in the background per Options.CompactEvery. When a background
// compaction is already running, Compact waits for it instead of
// starting another.
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.compacting {
		done := s.compactDone
		s.mu.Unlock()
		if done != nil {
			<-done
		}
		return nil
	}
	staged, done, err := s.beginCompactionLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.finishCompaction(staged, done)
}

// beginCompactionLocked is the cheap, mutex-held half of a compaction:
// flush and rotate the current WAL to wal.tail.evs, open a fresh WAL for
// subsequent appends, and stage a point-in-time copy of the live set.
// The expensive snapshot write happens in finishCompaction, off the
// append path. Callers must hold s.mu and have checked !s.compacting.
// The returned channel is this compaction generation's completion latch.
func (s *Store) beginCompactionLocked() (map[evserve.Key]evserve.Entry, chan struct{}, error) {
	if err := s.flushLocked(); err != nil {
		return nil, nil, err
	}
	walPath := filepath.Join(s.dir, walFile)
	tailPath := filepath.Join(s.dir, walTailFile)
	if _, err := os.Stat(tailPath); err == nil {
		// A leftover tail from a failed compaction: renaming over it
		// would drop its records from disk, so fold the current WAL into
		// it instead (append, sync, then truncate the WAL — a crash in
		// between merely duplicates records, and replay is idempotent).
		data, err := os.ReadFile(walPath)
		if err != nil {
			return nil, nil, fmt.Errorf("evstore: %w", err)
		}
		tf, err := os.OpenFile(tailPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("evstore: %w", err)
		}
		_, werr := tf.Write(data)
		if serr := tf.Sync(); werr == nil {
			werr = serr
		}
		if cerr := tf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return nil, nil, fmt.Errorf("evstore: folding WAL into tail: %w", werr)
		}
		if err := s.wal.Truncate(0); err != nil {
			return nil, nil, fmt.Errorf("evstore: %w", err)
		}
		if _, err := s.wal.Seek(0, 0); err != nil {
			return nil, nil, fmt.Errorf("evstore: %w", err)
		}
		s.w.Reset(s.wal)
	} else {
		// Rename before closing: the open handle follows the renamed file,
		// so a rename failure leaves the store exactly as it was — still
		// holding a writable WAL.
		if err := os.Rename(walPath, tailPath); err != nil {
			return nil, nil, fmt.Errorf("evstore: rotating WAL: %w", err)
		}
		if err := s.wal.Close(); err != nil {
			return nil, nil, fmt.Errorf("evstore: %w", err)
		}
		f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			// Roll the rotation back so the store keeps a writable WAL
			// instead of silently dropping durability until restart.
			if rerr := os.Rename(tailPath, walPath); rerr == nil {
				if rf, oerr := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644); oerr == nil {
					if _, serr := rf.Seek(0, 2); serr == nil {
						s.wal = rf
						s.w.Reset(rf)
						return nil, nil, fmt.Errorf("evstore: reopening WAL after rotation (rolled back): %w", err)
					}
					rf.Close()
				}
			}
			return nil, nil, fmt.Errorf("evstore: WAL unavailable after failed rotation — store is no longer durable: %w", err)
		}
		s.wal = f
		s.w.Reset(f)
		if s.opts.Sync {
			// The rename and the fresh WAL's directory entry must be as
			// durable as the record fsyncs that follow.
			if err := syncDir(s.dir); err != nil {
				return nil, nil, fmt.Errorf("evstore: %w", err)
			}
		}
	}
	s.pending = 0
	s.walRecords = 0
	// The WAL byte stream just changed identity (emptied in place or
	// replaced by a fresh file): retire the replication generation so
	// follower offsets into the old stream full-resync instead of reading
	// new bytes at stale positions.
	s.walGen = time.Now().UnixNano()
	s.walWritten = 0
	s.walBytes = 0
	staged := make(map[evserve.Key]evserve.Entry, len(s.records))
	for k, e := range s.records {
		staged[k] = e
	}
	s.compacting = true
	done := make(chan struct{})
	s.compactDone = done
	return staged, done, nil
}

// finishCompaction is the slow half: write the staged live set to
// snapshot.evs.tmp, fsync, rename it over the snapshot, then remove the
// rotated tail WAL (every one of its records is in the new snapshot).
// Write-rename-remove ordering keeps every crash point recoverable: the
// worst case is a surviving tail file whose records the snapshot already
// holds, which the next Open replays idempotently and absorbs. On error
// the tail is likewise left in place — no data is lost, only the
// compaction is abandoned (counted in Stats.CompactErrors).
func (s *Store) finishCompaction(staged map[evserve.Key]evserve.Entry, done chan struct{}) error {
	defer close(done)
	err := s.writeSnapshot(staged)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compacting = false
	if s.compactDone == done {
		s.compactDone = nil
	}
	if err != nil {
		s.compactErrors++
		return err
	}
	s.snapshotRecords = len(staged)
	s.snapshotAt = time.Now()
	s.compactions++
	return nil
}

// writeSnapshot persists the staged live set and removes the tail WAL.
// It runs without s.mu — it touches only the staged copy and files no
// other path writes.
func (s *Store) writeSnapshot(staged map[evserve.Key]evserve.Entry) error {
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	w := bufio.NewWriter(f)
	writeErr := func() error {
		keys := make([]evserve.Key, 0, len(staged))
		for k := range staged {
			keys = append(keys, k)
		}
		sortKeys(keys)
		for _, k := range keys {
			e := staged[k]
			line, err := encodeRecord(record{
				DB: k.DB, Variant: k.Variant, QHash: k.QHash,
				Evidence: e.Evidence, Trace: e.Trace,
			})
			if err != nil {
				return err
			}
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); writeErr == nil {
		writeErr = cerr
	}
	if writeErr != nil {
		os.Remove(tmp)
		return fmt.Errorf("evstore: writing snapshot: %w", writeErr)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	if err := os.Remove(filepath.Join(s.dir, walTailFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("evstore: %w", err)
	}
	if s.opts.Sync {
		// Make the snapshot rename and tail removal themselves durable.
		if err := syncDir(s.dir); err != nil {
			return fmt.Errorf("evstore: %w", err)
		}
	}
	return nil
}

// Close flushes, waits for any in-flight compaction, and closes the WAL.
// Idempotent; Append and Flush fail with ErrClosed afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	done := s.compactDone
	s.mu.Unlock()
	// Let the background snapshot finish before closing the WAL handle:
	// abandoning it mid-write would leave a tail file for the next Open
	// to absorb (safe, but needlessly). closed=true is already published,
	// so no new compaction can begin behind this wait.
	if done != nil {
		<-done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	// Closing the lock file releases the flock, letting the next process
	// (or a test's reopen) take the directory.
	if cerr := s.lock.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get returns the live entry for a key, if any. Replication uses it to
// detect records a follower already holds (full-mesh shipping would
// otherwise echo every record back and forth forever).
func (s *Store) Get(k evserve.Key) (evserve.Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.records[k]
	return e, ok
}

// Len returns the number of live entries (latest per key).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats is a point-in-time snapshot of the store's counters, shaped for
// the /metrics endpoint.
type Stats struct {
	// Records is the live entry count (latest per key).
	Records int `json:"records"`
	// SnapshotRecords is the live entry count as of the last compaction
	// (or the snapshot replayed at Open).
	SnapshotRecords int `json:"snapshot_records"`
	// WALRecords counts records in the current WAL generation.
	WALRecords int `json:"wal_records"`
	// TailDropped counts torn or corrupt records dropped during the last
	// Open's replay.
	TailDropped int `json:"tail_dropped"`
	// Appends counts Append calls accepted since Open.
	Appends int64 `json:"appends"`
	// Compactions counts completed snapshot rewrites since Open.
	Compactions int64 `json:"compactions"`
	// CompactErrors counts abandoned compactions (snapshot write failed;
	// no data lost — the rotated WAL tail stays on disk for the next
	// attempt or Open to absorb).
	CompactErrors int64 `json:"compact_errors,omitempty"`
	// ReplayMicros is how long the Open-time snapshot+WAL replay took.
	ReplayMicros int64 `json:"replay_us"`
	// SnapshotAgeSeconds is the time since the last compaction (or since
	// Open when none has run).
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Records:            len(s.records),
		SnapshotRecords:    s.snapshotRecords,
		WALRecords:         s.walRecords,
		TailDropped:        s.tailDropped,
		Appends:            s.appends,
		Compactions:        s.compactions,
		CompactErrors:      s.compactErrors,
		ReplayMicros:       s.replay.Microseconds(),
		SnapshotAgeSeconds: time.Since(s.snapshotAt).Seconds(),
	}
}
