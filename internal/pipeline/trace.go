package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// StageTrace records one stage's execution inside a Run: whether the
// result came from the stage memo, how long the stage took, and how many
// simulated LLM tokens it spent. The zero Tokens value is omitted from
// JSON so trace payloads stay compact for the non-LLM stages.
type StageTrace struct {
	// Stage is the stage name.
	Stage string `json:"stage"`
	// Deps lists the stages this stage waited on.
	Deps []string `json:"deps,omitempty"`
	// CacheHit reports that the result was served from the stage memo
	// (WallMicros then measures the memo lookup, and Tokens is 0 — no
	// tokens were spent).
	CacheHit bool `json:"cache_hit,omitempty"`
	// StartMicros is the stage's start offset from the run start, in
	// microseconds — what lets a span view reconstruct the DAG's overlap
	// from a finished trace.
	StartMicros int64 `json:"start_us,omitempty"`
	// WallMicros is the stage's wall time in microseconds.
	WallMicros int64 `json:"wall_us"`
	// Tokens counts prompt + completion tokens the stage spent.
	Tokens int `json:"tokens,omitempty"`
	// Err is the stage failure, when the stage is the one that aborted
	// the run.
	Err string `json:"error,omitempty"`
}

// Trace is the end-to-end provenance record of one Run: every executed
// stage in registration order, plus the whole-run wall time. SerialMicros
// sums the per-stage walls, so SerialMicros/WallMicros measures how much
// work the DAG overlapped — 1.0 means fully sequential.
type Trace struct {
	// Graph names the graph that produced this trace.
	Graph string `json:"graph"`
	// Stages holds one entry per executed stage, in registration order.
	// Stages skipped because the run aborted have no entry.
	Stages []StageTrace `json:"stages"`
	// WallMicros is the whole-run wall time in microseconds.
	WallMicros int64 `json:"wall_us"`
	// SerialMicros is the sum of per-stage wall times — what the same run
	// would have cost with no stage overlap.
	SerialMicros int64 `json:"serial_us"`
}

// Stage returns the trace entry for the named stage, or nil.
func (t *Trace) Stage(name string) *StageTrace {
	for i := range t.Stages {
		if t.Stages[i].Stage == name {
			return &t.Stages[i]
		}
	}
	return nil
}

// CacheHits counts stages served from their memo.
func (t *Trace) CacheHits() int {
	n := 0
	for _, st := range t.Stages {
		if st.CacheHit {
			n++
		}
	}
	return n
}

// Tokens sums tokens spent across all stages.
func (t *Trace) Tokens() int {
	n := 0
	for _, st := range t.Stages {
		n += st.Tokens
	}
	return n
}

// Overlap is SerialMicros/WallMicros: how many stage-seconds ran per
// wall-second. 1.0 means no overlap; higher means the DAG ran stages
// concurrently. Returns 0 before any stage completed.
func (t *Trace) Overlap() float64 {
	if t.WallMicros <= 0 {
		return 0
	}
	return float64(t.SerialMicros) / float64(t.WallMicros)
}

// Tree renders the trace as an indented dependency tree: stages are
// ordered and indented by their depth (longest dependency chain), so the
// printout reads top-down in execution order with the critical-path
// structure visible.
func (t *Trace) Tree() string {
	depth := make(map[string]int, len(t.Stages))
	var depthOf func(name string) int
	depthOf = func(name string) int {
		if d, ok := depth[name]; ok {
			return d
		}
		depth[name] = 0 // breaks cycles defensively; graphs are validated acyclic
		st := t.Stage(name)
		if st == nil {
			return 0
		}
		d := 0
		for _, dep := range st.Deps {
			if dd := depthOf(dep) + 1; dd > d {
				d = dd
			}
		}
		depth[name] = d
		return d
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  wall=%dus serial=%dus overlap=%.2fx\n", t.Graph, t.WallMicros, t.SerialMicros, t.Overlap())
	for _, st := range t.Stages {
		indent := strings.Repeat("  ", depthOf(st.Stage))
		mark := ""
		if st.CacheHit {
			mark = " [memo hit]"
		}
		if st.Err != "" {
			mark += " [error: " + st.Err + "]"
		}
		fmt.Fprintf(&b, "%s└─ %-18s %7dus  %5d tok%s\n", indent, st.Stage, st.WallMicros, st.Tokens, mark)
	}
	return b.String()
}

// StageAgg accumulates one stage's cost across many runs: how often it
// executed, how often the memo answered, and the total wall time and
// tokens it consumed. Aggregators publish these; /metrics, benchrun
// -stats and seedgen -stats render them.
type StageAgg struct {
	// Stage is the stage name.
	Stage string `json:"stage"`
	// Count is how many runs included the stage.
	Count int64 `json:"count"`
	// CacheHits is how many of those were served by the stage memo.
	CacheHits int64 `json:"cache_hits"`
	// WallMicros is the total stage wall time across runs.
	WallMicros int64 `json:"wall_us_total"`
	// Tokens is the total token spend across runs.
	Tokens int64 `json:"tokens_total"`
}

// MeanMicros is the mean per-run stage wall time.
func (a StageAgg) MeanMicros() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.WallMicros) / float64(a.Count)
}

// HitRate is CacheHits/Count.
func (a StageAgg) HitRate() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.CacheHits) / float64(a.Count)
}

// Aggregator folds Traces into per-stage totals. It is safe for
// concurrent use; evserve feeds it from every traced generation.
type Aggregator struct {
	mu     sync.Mutex
	stages map[string]*StageAgg
	order  []string // first-seen order, normally graph registration order

	runs       int64
	wallMicros int64
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{stages: make(map[string]*StageAgg)}
}

// Observe folds one trace into the totals. Nil traces are ignored, so
// callers can pass through untraced generations unconditionally.
func (a *Aggregator) Observe(t *Trace) {
	if t == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	a.wallMicros += t.WallMicros
	for _, st := range t.Stages {
		agg, ok := a.stages[st.Stage]
		if !ok {
			agg = &StageAgg{Stage: st.Stage}
			a.stages[st.Stage] = agg
			a.order = append(a.order, st.Stage)
		}
		agg.Count++
		if st.CacheHit {
			agg.CacheHits++
		}
		agg.WallMicros += st.WallMicros
		agg.Tokens += int64(st.Tokens)
	}
}

// Snapshot returns the per-stage totals in first-seen order.
func (a *Aggregator) Snapshot() []StageAgg {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]StageAgg, 0, len(a.order))
	for _, name := range a.order {
		out = append(out, *a.stages[name])
	}
	return out
}

// Runs returns how many traces were observed and their summed wall time.
func (a *Aggregator) Runs() (int64, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runs, time.Duration(a.wallMicros) * time.Microsecond
}

// SortedSnapshot returns the per-stage totals sorted by descending total
// wall time — the order a cost table wants.
func (a *Aggregator) SortedSnapshot() []StageAgg {
	out := a.Snapshot()
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallMicros > out[j].WallMicros })
	return out
}
