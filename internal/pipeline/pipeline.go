// Package pipeline is a small typed stage-graph runtime. A Graph is a set
// of named stages with declared dependencies; Execute runs the graph over
// one input, launching every stage whose dependencies are satisfied
// concurrently, cancelling the whole run on the first stage error, and
// recording a StageTrace (memo hit, wall time, token spend) per stage.
//
// It exists to turn SEED's hard-coded sequential call chain
// (keywords → samples → summary → shots → generate) into an explicit DAG:
// independent stages overlap, per-stage memos serve warm partial hits,
// and every layer above (evserve, the HTTP server, the experiment
// drivers) can see exactly where a generation spent its time.
//
// Stage outputs are typed through Ref[T]: AddStage returns a typed
// reference, In reads a dependency's value inside a stage body, and Out
// reads a stage's value from a finished Run — all without callers ever
// seeing an untyped map.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Graph is an immutable-after-construction stage DAG. Build with NewGraph
// + AddStage; Execute may be called concurrently from many goroutines.
type Graph struct {
	name    string
	stages  []*stage
	byName  map[string]*stage
	sealOne sync.Once
	sealErr error
}

// stage is one node: its dependencies, the untyped-adapted body, and the
// optional memoization hookup.
type stage struct {
	name  string
	deps  []string
	index int
	fn    func(c *Ctx) (any, error)

	memo *Memo
	key  func(input any) (string, bool)
}

// Ref is a typed handle to a stage's output.
type Ref[T any] struct{ name string }

// StageName returns the referenced stage's name; it implements Dep.
func (r Ref[T]) StageName() string { return r.name }

// Dep names a stage another stage waits on. Every Ref is a Dep.
type Dep interface{ StageName() string }

// Option configures one stage at AddStage time.
type Option func(*stage)

// After declares the stage's dependencies. The stage body may read their
// outputs with In; the scheduler guarantees they completed first.
func After(deps ...Dep) Option {
	return func(s *stage) {
		for _, d := range deps {
			s.deps = append(s.deps, d.StageName())
		}
	}
}

// Memoized attaches a memo to the stage. key derives the memo key from
// the run input; returning ok=false opts the particular run out of
// memoization. The memoized value is shared by reference across runs, so
// stage outputs must be treated as immutable — and key must capture
// everything the stage's output depends on, or warm runs will serve a
// stale sibling's result.
func Memoized(m *Memo, key func(input any) (string, bool)) Option {
	return func(s *stage) {
		s.memo = m
		s.key = key
	}
}

// NewGraph returns an empty graph with the given display name.
func NewGraph(name string) *Graph {
	return &Graph{name: name, byName: make(map[string]*stage)}
}

// AddStage registers a stage and returns its typed output reference. It
// panics on a duplicate name or an unknown dependency — both programming
// errors in graph construction, not runtime conditions.
func AddStage[T any](g *Graph, name string, fn func(c *Ctx) (T, error), opts ...Option) Ref[T] {
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("pipeline: stage %q registered twice", name))
	}
	st := &stage{
		name:  name,
		index: len(g.stages),
		fn: func(c *Ctx) (any, error) {
			v, err := fn(c)
			if err != nil {
				return nil, err
			}
			return v, nil
		},
	}
	for _, o := range opts {
		o(st)
	}
	for _, d := range st.deps {
		if _, ok := g.byName[d]; !ok {
			panic(fmt.Sprintf("pipeline: stage %q depends on unregistered stage %q (register dependencies first)", name, d))
		}
	}
	g.stages = append(g.stages, st)
	g.byName[name] = st
	return Ref[T]{name: name}
}

// seal validates the graph once before first execution. Dependencies are
// checked at AddStage (they must pre-exist), which also makes cycles
// unrepresentable; seal keeps a place for future invariants and caches
// any error.
func (g *Graph) seal() error {
	g.sealOne.Do(func() {
		if len(g.stages) == 0 {
			g.sealErr = fmt.Errorf("pipeline: graph %q has no stages", g.name)
		}
	})
	return g.sealErr
}

// Ctx is the view a stage body gets of its run: the cancellation context,
// the run input, typed access to dependency outputs, and a token meter.
type Ctx struct {
	ctx   context.Context
	run   *Run
	stage *stage

	tokens int
}

// Context returns the run's cancellation context. Long stages should
// check it so a sibling's failure aborts them promptly.
func (c *Ctx) Context() context.Context { return c.ctx }

// Input returns the run input as passed to Execute.
func (c *Ctx) Input() any { return c.run.input }

// AddTokens records simulated-LLM token spend against this stage's trace.
func (c *Ctx) AddTokens(n int) { c.tokens += n }

// In returns a dependency's output inside a stage body. It panics if the
// referenced stage was not declared a dependency — reading an undeclared
// stage is a scheduling race, and failing loudly at development time is
// the only safe behaviour.
func In[T any](c *Ctx, ref Ref[T]) T {
	declared := false
	for _, d := range c.stage.deps {
		if d == ref.name {
			declared = true
			break
		}
	}
	if !declared {
		panic(fmt.Sprintf("pipeline: stage %q reads %q without declaring it in After(...)", c.stage.name, ref.name))
	}
	v, ok := c.run.value(ref.name)
	if !ok {
		panic(fmt.Sprintf("pipeline: stage %q read dependency %q before completion", c.stage.name, ref.name))
	}
	return v.(T)
}

// Run is one execution of a Graph: the input, completed stage outputs,
// and the accumulating trace. Values are written by the scheduler under
// r.mu; after Execute returns, the Run is immutable.
type Run struct {
	graph *Graph
	input any

	mu     sync.Mutex
	values map[string]any
	traces []StageTrace

	start time.Time
	wall  time.Duration
}

func (r *Run) value(name string) (any, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.values[name]
	return v, ok
}

// Out returns a stage's output from a finished run. It panics when the
// stage did not complete (the run aborted first) — callers should only
// read outputs from runs whose Execute returned nil.
func Out[T any](r *Run, ref Ref[T]) T {
	v, ok := r.value(ref.name)
	if !ok {
		panic(fmt.Sprintf("pipeline: stage %q has no output (run aborted?)", ref.name))
	}
	return v.(T)
}

// Trace assembles the run's provenance record: per-stage traces in
// registration order plus whole-run wall time.
func (r *Run) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Trace{
		Graph:      r.graph.name,
		Stages:     make([]StageTrace, len(r.traces)),
		WallMicros: r.wall.Microseconds(),
	}
	copy(t.Stages, r.traces)
	// Registration order, not completion order: stable for golden tests
	// and human reading.
	orderOf := func(name string) int { return r.graph.byName[name].index }
	for i := 1; i < len(t.Stages); i++ {
		for j := i; j > 0 && orderOf(t.Stages[j].Stage) < orderOf(t.Stages[j-1].Stage); j-- {
			t.Stages[j], t.Stages[j-1] = t.Stages[j-1], t.Stages[j]
		}
	}
	for _, st := range t.Stages {
		t.SerialMicros += st.WallMicros
	}
	return t
}

// Execute runs the graph over input. Stages whose dependencies are
// satisfied run concurrently; the first stage error cancels the run's
// context, stops new launches, and is returned (wrapped with the stage
// name) after every in-flight stage finishes. The returned Run always
// carries the traces of the stages that did execute, so failed runs are
// still diagnosable.
func (g *Graph) Execute(ctx context.Context, input any) (*Run, error) {
	if err := g.seal(); err != nil {
		return nil, err
	}
	start := time.Now()
	r := &Run{graph: g, input: input, values: make(map[string]any, len(g.stages)), start: start}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	// remaining[i] counts unfinished dependencies of stage i; dependents
	// inverts the edge direction for completion propagation.
	remaining := make([]int, len(g.stages))
	dependents := make([][]int, len(g.stages))
	for i, st := range g.stages {
		remaining[i] = len(st.deps)
		for _, d := range st.deps {
			di := g.byName[d].index
			dependents[di] = append(dependents[di], i)
		}
	}

	done := make(chan int, len(g.stages))
	var firstErr error
	var errMu sync.Mutex
	launched := 0

	launch := func(i int) {
		launched++
		go func(st *stage) {
			if err := g.runStage(runCtx, r, st); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("stage %s: %w", st.name, err)
				}
				errMu.Unlock()
				cancel(err)
			}
			done <- st.index
		}(g.stages[i])
	}

	for i := range g.stages {
		if remaining[i] == 0 {
			launch(i)
		}
	}
	for finished := 0; finished < launched; finished++ {
		i := <-done
		errMu.Lock()
		aborted := firstErr != nil
		errMu.Unlock()
		if aborted {
			continue // drain in-flight stages; launch nothing new
		}
		for _, di := range dependents[i] {
			remaining[di]--
			if remaining[di] == 0 {
				launch(di)
			}
		}
	}
	r.mu.Lock()
	r.wall = time.Since(start)
	r.mu.Unlock()
	if firstErr != nil {
		return r, firstErr
	}
	if err := ctx.Err(); err != nil {
		return r, err
	}
	return r, nil
}

// runStage executes one stage: memo probe, body, memo fill, trace. A
// panicking stage body is converted to an error so one bad stage aborts
// its run instead of the whole process — these graphs run inside serving
// worker pools.
func (g *Graph) runStage(ctx context.Context, r *Run, st *stage) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
			r.mu.Lock()
			r.traces = append(r.traces, StageTrace{Stage: st.name, Deps: st.deps, Err: err.Error()})
			r.mu.Unlock()
		}
	}()
	t0 := time.Now()
	tr := StageTrace{Stage: st.name, Deps: st.deps, StartMicros: t0.Sub(r.start).Microseconds()}

	memoKey := ""
	memoize := false
	if st.memo != nil && st.key != nil {
		if k, ok := st.key(r.input); ok {
			memoKey, memoize = k, true
			if v, hit := st.memo.Get(k); hit {
				tr.CacheHit = true
				tr.WallMicros = time.Since(t0).Microseconds()
				r.mu.Lock()
				r.values[st.name] = v
				r.traces = append(r.traces, tr)
				r.mu.Unlock()
				return nil
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	c := &Ctx{ctx: ctx, run: r, stage: st}
	v, err := st.fn(c)
	tr.WallMicros = time.Since(t0).Microseconds()
	tr.Tokens = c.tokens
	if err != nil {
		tr.Err = err.Error()
		r.mu.Lock()
		r.traces = append(r.traces, tr)
		r.mu.Unlock()
		return err
	}
	if memoize {
		st.memo.Put(memoKey, v)
	}
	r.mu.Lock()
	r.values[st.name] = v
	r.traces = append(r.traces, tr)
	r.mu.Unlock()
	return nil
}

// Stages lists the stage names in registration order.
func (g *Graph) Stages() []string {
	out := make([]string, len(g.stages))
	for i, st := range g.stages {
		out[i] = st.name
	}
	return out
}

// Name returns the graph's display name.
func (g *Graph) Name() string { return g.name }
