package pipeline

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Memo is a sharded LRU cache for stage results, keyed by the stage's
// input-derived key string. It follows the evserve cache idiom — one lock
// and recency list per shard, shard chosen by key hash — so concurrent
// runs memoizing different questions never contend on one lock.
//
// Values are stored as produced by the stage and returned to later runs
// by reference: memoized stage outputs must be treated as immutable by
// every consumer.
type Memo struct {
	shards []*memoShard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type memoShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
}

// memoEntry is the list payload: the key (for eviction bookkeeping) and
// the stage value.
type memoEntry struct {
	key string
	val any
}

// NewMemo builds a sharded LRU of roughly capacity entries over the given
// shard count (rounded up to a power of two). Non-positive arguments fall
// back to defaults (capacity 4096, 16 shards).
func NewMemo(capacity, shards int) *Memo {
	if capacity <= 0 {
		capacity = 4096
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	m := &Memo{shards: make([]*memoShard, n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i] = &memoShard{
			capacity: perShard,
			entries:  make(map[string]*list.Element),
			order:    list.New(),
		}
	}
	return m
}

func (m *Memo) shardFor(key string) *memoShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return m.shards[h.Sum64()&m.mask]
}

// Get returns the memoized value, marking the entry most recently used.
func (m *Memo) Get(key string) (val any, ok bool) {
	s := m.shardFor(key)
	s.mu.Lock()
	el, found := s.entries[key]
	if !found {
		s.mu.Unlock()
		m.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	val = el.Value.(*memoEntry).val
	s.mu.Unlock()
	m.hits.Add(1)
	return val, true
}

// Put stores a stage result under key, evicting the shard's least
// recently used entry when full.
func (m *Memo) Put(key string, val any) {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*memoEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*memoEntry).key)
			m.evictions.Add(1)
		}
	}
	s.entries[key] = s.order.PushFront(&memoEntry{key: key, val: val})
}

// Reset drops every entry (counters are preserved). Benchmarks use it to
// re-measure the cold path on a warmed pipeline.
func (m *Memo) Reset() {
	for _, s := range m.shards {
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.order = list.New()
		s.mu.Unlock()
	}
}

// Len returns the current entry count across shards.
func (m *Memo) Len() int {
	n := 0
	for _, s := range m.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// MemoStats is a point-in-time snapshot of memo effectiveness counters.
type MemoStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// Stats snapshots the memo counters.
func (m *Memo) Stats() MemoStats {
	return MemoStats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Evictions: m.evictions.Load(),
		Entries:   m.Len(),
	}
}
