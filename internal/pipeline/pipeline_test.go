package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// diamond builds the canonical test graph:
//
//	a ─┬─ b ─┐
//	   └─ c ─┴─ d
func diamond(t *testing.T, memo *Memo) (*Graph, Ref[int]) {
	t.Helper()
	g := NewGraph("diamond")
	a := AddStage(g, "a", func(c *Ctx) (int, error) { return c.Input().(int), nil })
	var bOpts []Option
	bOpts = append(bOpts, After(a))
	if memo != nil {
		bOpts = append(bOpts, Memoized(memo, func(input any) (string, bool) {
			return fmt.Sprint(input), true
		}))
	}
	b := AddStage(g, "b", func(c *Ctx) (int, error) {
		c.AddTokens(10)
		return In(c, a) * 2, nil
	}, bOpts...)
	cc := AddStage(g, "c", func(c *Ctx) (int, error) { return In(c, a) + 1, nil }, After(a))
	d := AddStage(g, "d", func(c *Ctx) (int, error) { return In(c, b) + In(c, cc), nil }, After(b, cc))
	return g, d
}

func TestDiamondExecutes(t *testing.T) {
	g, d := diamond(t, nil)
	run, err := g.Execute(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := Out(run, d); got != 5*2+5+1 {
		t.Fatalf("d = %d, want 16", got)
	}
	tr := run.Trace()
	if len(tr.Stages) != 4 {
		t.Fatalf("trace has %d stages, want 4", len(tr.Stages))
	}
	// Registration order, with deps recorded.
	names := make([]string, len(tr.Stages))
	for i, st := range tr.Stages {
		names[i] = st.Stage
	}
	if strings.Join(names, ",") != "a,b,c,d" {
		t.Errorf("trace order = %v", names)
	}
	if got := tr.Stage("d").Deps; len(got) != 2 {
		t.Errorf("d deps = %v", got)
	}
	if tr.Stage("b").Tokens != 10 {
		t.Errorf("b tokens = %d, want 10", tr.Stage("b").Tokens)
	}
	var sum int64
	for _, st := range tr.Stages {
		sum += st.WallMicros
	}
	if tr.SerialMicros != sum {
		t.Errorf("SerialMicros = %d, want sum of stage walls %d", tr.SerialMicros, sum)
	}
}

func TestIndependentStagesOverlap(t *testing.T) {
	// Two 40ms sleeps with no mutual dependency must overlap: wall well
	// under the 80ms serial cost. Sleeps make this robust on one CPU.
	g := NewGraph("par")
	s1 := AddStage(g, "s1", func(c *Ctx) (int, error) { time.Sleep(40 * time.Millisecond); return 1, nil })
	s2 := AddStage(g, "s2", func(c *Ctx) (int, error) { time.Sleep(40 * time.Millisecond); return 2, nil })
	sum := AddStage(g, "sum", func(c *Ctx) (int, error) { return In(c, s1) + In(c, s2), nil }, After(s1, s2))
	start := time.Now()
	run, err := g.Execute(context.Background(), nil)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if got := Out(run, sum); got != 3 {
		t.Fatalf("sum = %d", got)
	}
	if wall > 70*time.Millisecond {
		t.Errorf("independent stages did not overlap: wall %v (serial would be 80ms)", wall)
	}
	if ov := run.Trace().Overlap(); ov < 1.5 {
		t.Errorf("overlap = %.2f, want >= 1.5", ov)
	}
}

func TestStageErrorCancelsRun(t *testing.T) {
	g := NewGraph("fail")
	bad := AddStage(g, "bad", func(c *Ctx) (int, error) { return 0, errors.New("boom") })
	slow := AddStage(g, "slow", func(c *Ctx) (int, error) {
		select {
		case <-c.Context().Done():
			return 0, c.Context().Err()
		case <-time.After(5 * time.Second):
			return 1, nil
		}
	})
	_ = AddStage(g, "after", func(c *Ctx) (int, error) { return In(c, bad) + In(c, slow), nil }, After(bad, slow))
	start := time.Now()
	run, err := g.Execute(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("failure did not cancel the slow sibling")
	}
	// The failed stage's trace is preserved for diagnosis.
	if tr := run.Trace(); tr.Stage("bad") == nil || tr.Stage("bad").Err == "" {
		t.Errorf("failed stage missing from trace: %+v", tr)
	}
}

func TestContextCancellationAborts(t *testing.T) {
	g := NewGraph("ctx")
	_ = AddStage(g, "wait", func(c *Ctx) (int, error) {
		<-c.Context().Done()
		return 0, c.Context().Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if _, err := g.Execute(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMemoizationServesWarmRuns(t *testing.T) {
	memo := NewMemo(16, 1)
	var executions atomic.Int64
	g := NewGraph("memo")
	st := AddStage(g, "expensive", func(c *Ctx) (string, error) {
		executions.Add(1)
		c.AddTokens(7)
		return "v:" + fmt.Sprint(c.Input()), nil
	}, Memoized(memo, func(input any) (string, bool) { return fmt.Sprint(input), true }))

	run1, err := g.Execute(context.Background(), "q")
	if err != nil {
		t.Fatal(err)
	}
	run2, err := g.Execute(context.Background(), "q")
	if err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 1 {
		t.Fatalf("stage executed %d times, want 1", executions.Load())
	}
	if Out(run1, st) != Out(run2, st) {
		t.Error("memoized value differs")
	}
	tr2 := run2.Trace()
	if !tr2.Stage("expensive").CacheHit {
		t.Error("warm run not marked cache hit")
	}
	if tr2.Stage("expensive").Tokens != 0 {
		t.Errorf("memo hit charged %d tokens, want 0", tr2.Stage("expensive").Tokens)
	}
	if tr2.CacheHits() != 1 {
		t.Errorf("CacheHits = %d", tr2.CacheHits())
	}
	// A different input misses.
	if _, err := g.Execute(context.Background(), "other"); err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 2 {
		t.Errorf("distinct input did not execute: %d", executions.Load())
	}
	if st := memo.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Errorf("memo stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestMemoResetAndEviction(t *testing.T) {
	m := NewMemo(2, 1)
	m.Put("a", 1)
	m.Put("b", 2)
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a missing")
	}
	m.Put("c", 3) // evicts b (a was refreshed)
	if _, ok := m.Get("b"); ok {
		t.Error("b should be evicted")
	}
	if st := m.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("Len after Reset = %d", m.Len())
	}
}

func TestConcurrentExecutes(t *testing.T) {
	// Many goroutines share one graph + memo; -race is the assertion.
	memo := NewMemo(64, 4)
	g, d := diamond(t, memo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				run, err := g.Execute(context.Background(), i%5)
				if err != nil {
					t.Error(err)
					return
				}
				want := (i%5)*2 + (i % 5) + 1
				if got := Out(run, d); got != want {
					t.Errorf("d = %d, want %d", got, want)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestAddStagePanics(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanic("duplicate stage", func() {
		g := NewGraph("dup")
		AddStage(g, "x", func(c *Ctx) (int, error) { return 0, nil })
		AddStage(g, "x", func(c *Ctx) (int, error) { return 0, nil })
	})
	assertPanic("unknown dependency", func() {
		g := NewGraph("unknown")
		AddStage(g, "x", func(c *Ctx) (int, error) { return 0, nil }, After(Ref[int]{name: "ghost"}))
	})
}

func TestUndeclaredInFailsRun(t *testing.T) {
	// Reading a stage not declared in After(...) is a scheduling race; the
	// body's panic is converted to a run error rather than crashing the
	// worker pool.
	g := NewGraph("undeclared")
	a := AddStage(g, "a", func(c *Ctx) (int, error) { return 1, nil })
	AddStage(g, "b", func(c *Ctx) (int, error) { return In(c, a), nil }) // no After(a)
	_, err := g.Execute(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "without declaring") {
		t.Fatalf("err = %v, want undeclared-dependency panic converted to error", err)
	}
}

func TestEmptyGraphErrors(t *testing.T) {
	if _, err := NewGraph("empty").Execute(context.Background(), nil); err == nil {
		t.Fatal("empty graph should fail to execute")
	}
}

func TestTraceTreeRendersDepths(t *testing.T) {
	g, _ := diamond(t, nil)
	run, err := g.Execute(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tree := run.Trace().Tree()
	for _, stage := range []string{"a", "b", "c", "d"} {
		if !strings.Contains(tree, stage) {
			t.Errorf("tree missing stage %s:\n%s", stage, tree)
		}
	}
	// d depends on b and c which depend on a: d must be indented deeper
	// than a.
	var aIndent, dIndent int
	for _, line := range strings.Split(tree, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "└─ a ") {
			aIndent = len(line) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, "└─ d ") {
			dIndent = len(line) - len(trimmed)
		}
	}
	if dIndent <= aIndent {
		t.Errorf("d indent %d should exceed a indent %d:\n%s", dIndent, aIndent, tree)
	}
}

func TestAggregator(t *testing.T) {
	g, _ := diamond(t, nil)
	agg := NewAggregator()
	agg.Observe(nil) // ignored
	for i := 0; i < 3; i++ {
		run, err := g.Execute(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		agg.Observe(run.Trace())
	}
	snap := agg.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d stages, want 4", len(snap))
	}
	if snap[0].Stage != "a" || snap[0].Count != 3 {
		t.Errorf("first stage agg = %+v", snap[0])
	}
	var b StageAgg
	for _, s := range snap {
		if s.Stage == "b" {
			b = s
		}
	}
	if b.Tokens != 30 {
		t.Errorf("b tokens total = %d, want 30", b.Tokens)
	}
	runs, _ := agg.Runs()
	if runs != 3 {
		t.Errorf("runs = %d", runs)
	}
	sorted := agg.SortedSnapshot()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].WallMicros > sorted[i-1].WallMicros {
			t.Errorf("SortedSnapshot not descending by wall: %+v", sorted)
		}
	}
}

func TestMemoKeyOptOut(t *testing.T) {
	memo := NewMemo(16, 1)
	var executions atomic.Int64
	g := NewGraph("optout")
	AddStage(g, "s", func(c *Ctx) (int, error) {
		executions.Add(1)
		return 1, nil
	}, Memoized(memo, func(input any) (string, bool) { return "", false }))
	for i := 0; i < 3; i++ {
		if _, err := g.Execute(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if executions.Load() != 3 {
		t.Errorf("opted-out stage memoized anyway: %d executions", executions.Load())
	}
}
