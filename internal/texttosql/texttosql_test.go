package texttosql

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/llm"
)

var (
	corpusOnce sync.Once
	corpus     *dataset.Corpus
)

func testCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	corpusOnce.Do(func() { corpus = dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7}) })
	return corpus
}

func taskFor(t *testing.T, c *dataset.Corpus, idx int, ev string) Task {
	t.Helper()
	e := c.Dev[idx]
	db := c.DBs[e.DB]
	return Task{Example: e, DB: db, Evidence: ev}
}

func TestGeneratorsProduceExecutableSQLMostly(t *testing.T) {
	c := testCorpus(t)
	client := llm.NewSimulator()
	gens := []Generator{
		NewCHESSIRCGUT(client), NewCHESSIRSSCG(client), NewRSLSQL(client),
		NewCodeS(client, 15), NewDAILSQL(client), NewC3(client),
	}
	for _, gen := range gens {
		execOK := 0
		n := 0
		for i := 0; i < len(c.Dev); i += 10 {
			task := taskFor(t, c, i, c.Dev[i].CleanEvidence)
			sql, err := gen.Generate(task)
			if err != nil {
				t.Fatalf("%s: generate: %v", gen.Name(), err)
			}
			n++
			if _, err := task.DB.Engine.Exec(sql); err == nil {
				execOK++
			}
		}
		if execOK*100 < n*80 {
			t.Errorf("%s: only %d/%d predictions execute", gen.Name(), execOK, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := testCorpus(t)
	gen := NewCodeS(llm.NewSimulator(), 15)
	task := taskFor(t, c, 3, c.Dev[3].CleanEvidence)
	a, err := gen.Generate(task)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(task)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("generation not deterministic:\n%s\n%s", a, b)
	}
}

func TestEvidenceResolvesValueMapAtoms(t *testing.T) {
	// With clean evidence, a ValueMap atom's code must appear in the SQL
	// for the vast majority of examples; without evidence it mostly must
	// not (the code is not guessable).
	c := testCorpus(t)
	gen := NewDAILSQL(llm.NewSimulator()) // no retrieval: isolates evidence
	withEv, withoutEv, n := 0, 0, 0
	for i := range c.Dev {
		e := c.Dev[i]
		var code string
		for _, a := range e.Atoms {
			if a.Kind == dataset.ValueMap && len(a.Value) > 3 {
				code = a.Value
				break
			}
		}
		if code == "" {
			continue
		}
		n++
		sqlEv, err := gen.Generate(taskFor(t, c, i, e.CleanEvidence))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(sqlEv, code) {
			withEv++
		}
		sqlNo, err := gen.Generate(taskFor(t, c, i, ""))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(sqlNo, code) {
			withoutEv++
		}
	}
	if n == 0 {
		t.Fatal("no value-map examples found")
	}
	if withEv*100 < n*70 {
		t.Errorf("clean evidence resolved codes in only %d/%d", withEv, n)
	}
	if withoutEv*100 > n*60 {
		t.Errorf("without evidence codes still appear in %d/%d (too guessable)", withoutEv, n)
	}
	if withEv <= withoutEv {
		t.Errorf("evidence must increase code resolution: %d vs %d", withEv, withoutEv)
	}
}

func TestFormatStrictReducesSeedStyleIngestion(t *testing.T) {
	// A strict system must ingest fewer SEED-shaped clauses (qualified
	// bodies) than a concat system with the same model.
	c := testCorpus(t)
	client := llm.NewSimulator()
	mk := func(strict float64) Generator {
		return NewGenerator(Options{
			DisplayName:  "probe",
			Model:        "gpt-4o-mini",
			FormatStrict: strict,
			Candidates:   1,
		}, client)
	}
	concat, strict := mk(0), mk(1.0)
	resolved := func(gen Generator) int {
		n := 0
		for i := range c.Dev {
			e := c.Dev[i]
			if len(e.Atoms) == 0 || e.Atoms[0].Kind != dataset.ValueMap {
				continue
			}
			// Qualified-body variant of the clean evidence.
			ev := strings.ReplaceAll(e.CleanEvidence, " refers to ", " refers to "+e.Atoms[0].Table+".")
			sql, err := gen.Generate(Task{Example: e, DB: c.DBs[e.DB], Evidence: ev})
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(sql, e.Atoms[0].Value) {
				n++
			}
		}
		return n
	}
	if rc, rs := resolved(concat), resolved(strict); rs >= rc {
		t.Errorf("strict ingestion (%d) should resolve fewer qualified clauses than concat (%d)", rs, rc)
	}
}

func TestUnitTestPicksConsistentCandidate(t *testing.T) {
	c := testCorpus(t)
	client := llm.NewSimulator()
	one := NewGenerator(Options{DisplayName: "one", Model: "chatgpt", Candidates: 1}, client)
	voted := NewGenerator(Options{DisplayName: "voted", Model: "chatgpt", Candidates: 5, UnitTest: true}, client)
	// Voting should never produce non-executable SQL more often.
	errOne, errVoted := 0, 0
	for i := 0; i < len(c.Dev); i += 7 {
		task := taskFor(t, c, i, "")
		s1, _ := one.Generate(task)
		s2, _ := voted.Generate(task)
		if _, err := task.DB.Engine.Exec(s1); err != nil {
			errOne++
		}
		if _, err := task.DB.Engine.Exec(s2); err != nil {
			errVoted++
		}
	}
	if errVoted > errOne {
		t.Errorf("unit testing should not increase execution errors: %d vs %d", errVoted, errOne)
	}
}

func TestWrapInefficientPreservesResults(t *testing.T) {
	c := testCorpus(t)
	checked := 0
	for i := 0; i < len(c.Dev) && checked < 25; i += 3 {
		e := c.Dev[i]
		slow, ok := wrapInefficient(e.GoldSQL)
		if !ok {
			continue
		}
		checked++
		db := c.DBs[e.DB]
		g, err1 := db.Engine.Exec(e.GoldSQL)
		s, err2 := db.Engine.Exec(slow)
		if err1 != nil || err2 != nil {
			t.Fatalf("wrap broke execution for %s: %v / %v\n%s", e.ID, err1, err2, slow)
		}
		if fingerprint(g.Rows) != fingerprint(s.Rows) {
			t.Errorf("wrap changed results for %s", e.ID)
		}
		if s.Cost <= g.Cost {
			t.Errorf("wrap did not increase cost for %s (%d vs %d)", e.ID, s.Cost, g.Cost)
		}
	}
	if checked == 0 {
		t.Fatal("no queries wrapped")
	}
}

func TestRetrieverFindsValues(t *testing.T) {
	c := testCorpus(t)
	db := c.DBs["financial"]
	for _, strat := range []Strategy{StrategyScan, StrategyBM25} {
		r := NewRetriever(strat)
		frag, ok := r.FindFrag(db, dataset.Atom{
			Kind: dataset.Synonym, Term: "women", ValueDerivable: true,
		})
		if !ok || frag != "'F'" {
			t.Errorf("strategy %v: FindFrag(women) = %q, %v", strat, frag, ok)
		}
	}
}

func TestLookupDocsResolvesRangesAndMaps(t *testing.T) {
	c := testCorpus(t)
	db := c.DBs["thrombosis_prediction"]
	frag, ok := lookupDocs(db, dataset.Atom{
		Kind: dataset.Threshold, Term: "hematoclit level exceeded the normal range",
		DocDerivable: true,
	})
	if !ok || !strings.Contains(frag, ">= 52") {
		t.Errorf("lookupDocs threshold = %q, %v", frag, ok)
	}
	dbF := c.DBs["financial"]
	frag, ok = lookupDocs(dbF, dataset.Atom{
		Kind: dataset.ValueMap, Term: "weekly issuance", DocDerivable: true,
	})
	if !ok || frag != "'POPLATEK TYDNE'" {
		t.Errorf("lookupDocs value map = %q, %v", frag, ok)
	}
}

func TestCodeSSizes(t *testing.T) {
	client := llm.NewSimulator()
	for _, size := range []int{1, 3, 7, 15} {
		gen := NewCodeS(client, size)
		if gen.Name() == "" {
			t.Errorf("size %d has no name", size)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid CodeS size should panic")
		}
	}()
	NewCodeS(client, 42)
}

// TestValueIndexBuiltOncePerDB pins the retriever's caching contract: the
// BM25 value index and the distinct-value inventories are constructed on
// first use and then shared — repeat lookups (and concurrent ones) must
// return the very same index object, not rebuild it.
func TestValueIndexBuiltOncePerDB(t *testing.T) {
	c := testCorpus(t)
	db, ok := c.DB("financial")
	if !ok {
		t.Fatal("no financial DB")
	}
	r := NewRetriever(StrategyBM25)

	first := r.valueIndex(db)
	if first == nil || first.index == nil {
		t.Fatal("valueIndex returned nil index")
	}
	for i := 0; i < 5; i++ {
		if got := r.valueIndex(db); got != first {
			t.Fatalf("valueIndex rebuilt on call %d", i+2)
		}
	}

	// Concurrent searches through the public path must all land on the
	// same cached index (and not race; run with -race).
	var wg sync.WaitGroup
	results := make([]*valueIndex, 8)
	for w := range results {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.searchBM25(db, "weekly issuance")
			results[w] = r.valueIndex(db)
		}(w)
	}
	wg.Wait()
	for w, got := range results {
		if got != first {
			t.Fatalf("worker %d saw a different valueIndex", w)
		}
	}

	// distinctValues shares the same build-once contract.
	v1 := r.distinctValues(db, "account", "frequency")
	v2 := r.distinctValues(db, "account", "frequency")
	if len(v1) == 0 {
		t.Fatal("no distinct values for account.frequency")
	}
	if &v1[0] != &v2[0] {
		t.Fatal("distinctValues rebuilt its slice on a repeat lookup")
	}
}
