// Package texttosql implements the five baseline text-to-SQL systems the
// paper evaluates SEED with (§IV-C): CHESS (multi-agent, in two agent
// configurations), RSL-SQL (bidirectional schema linking), CodeS
// (fine-tuned small models with BM25 value retrieval), DAIL-SQL
// (prompt-engineered in-context learning) and C3 (zero-shot with
// self-consistency voting).
//
// All five share one semantic core and differ exactly where the paper says
// they differ: what retrieval machinery they bring (CHESS's information
// retriever, CodeS's BM25 + longest-common-substring, RSL-SQL's schema
// linking), how many candidates they generate and test, and — critically
// for Tables VI/VII — how they ingest evidence. StyleConcat systems
// (CodeS, DAIL-SQL) append evidence to the question and tolerate any
// clause shape, even profiting from join hints; StylePromptEngineered
// systems (CHESS) are tuned to BIRD's exact evidence format and mis-ingest
// clauses that deviate from it.
//
// Simulation boundary: natural-language parsing proper is outside scope,
// so each generator receives the question's structural skeleton (the SQL
// template) and must fill its knowledge slots; structural assembly itself
// succeeds with capability- and complexity-dependent probability, failing
// into the example's precomputed near-miss corruption. Everything
// knowledge-related — the part of the problem SEED addresses — is resolved
// mechanically from evidence, retrieval or capability-gated guessing.
package texttosql

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/evidence"
	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// Task is one generation request.
type Task struct {
	Example  dataset.Example
	DB       *schema.DB
	Evidence string // evidence provided with the question; "" = none
}

// Generator converts a task to SQL.
type Generator interface {
	Name() string
	Generate(task Task) (string, error)
}

// Options configures the shared generation core. Exported so ablation
// benchmarks can probe individual mechanisms.
type Options struct {
	// DisplayName is the table row label, e.g. "CHESS_IR+CG+UT".
	DisplayName string
	// Model is the backing simulated LLM.
	Model string
	// FormatStrict in [0,1] models prompt-engineered evidence ingestion:
	// the probability that a clause whose body deviates from BIRD's plain
	// shape (table-qualified references, the style SEED emits) is not
	// slotted into the tuned prompt fields and falls back to the
	// system's own retrieval. Zero means plain concatenation (CodeS,
	// DAIL-SQL): any clause shape is ingested.
	FormatStrict float64
	// JoinDisruption scales how badly join-path clauses (a format BIRD
	// evidence never uses) derail the system's structured agent chain —
	// the Table VII mechanism. Zero for concatenation-style systems.
	JoinDisruption float64
	// ReadsJoinHints marks concatenation-style systems that profit from
	// join clauses by binding them directly into join slots.
	ReadsJoinHints bool
	// Values enables database value retrieval (CHESS IR, RSL-SQL, CodeS).
	Values *Retriever
	// Docs in [0,1] is the quality of description-file retrieval (CHESS
	// IR reads descriptions aggressively; CodeS only sees column
	// comments; DAIL-SQL reads none).
	Docs float64
	// SchemaLinking in [0,1] is the quality of column/join binding
	// machinery (RSL-SQL's bidirectional linking scores highest).
	SchemaLinking float64
	// StructBoost adjusts structural assembly success (positive for
	// strong pipelines, negative when schema pruning risks dropping
	// needed tables — the §II finding about schema linking).
	StructBoost float64
	// Candidates is how many SQL candidates to draw.
	Candidates int
	// UnitTest executes candidates and picks the execution-consistent
	// majority (CHESS's UT agent, C3's consistent-output voting).
	UnitTest bool
}

// OptionsProvider is implemented by generators built through NewGenerator.
// It exposes the option set so callers that manage generator lifecycles —
// the serving session registry warming a session's value retriever, for
// one — can reach the shared machinery without knowing which baseline the
// generator realises.
type OptionsProvider interface {
	Options() Options
}

// pipeline is the shared Generator implementation.
type pipeline struct {
	opts   Options
	client llm.Client
}

// Options implements OptionsProvider.
func (p *pipeline) Options() Options { return p.opts }

// NewGenerator builds a generator from explicit options. The five paper
// baselines are canned option sets over this core.
func NewGenerator(opts Options, client llm.Client) Generator {
	if opts.Candidates <= 0 {
		opts.Candidates = 1
	}
	return &pipeline{opts: opts, client: client}
}

func (p *pipeline) Name() string { return p.opts.DisplayName }

// Generate implements Generator.
func (p *pipeline) Generate(task Task) (string, error) {
	var candidates []string
	for c := 0; c < p.opts.Candidates; c++ {
		sql, err := p.generateOnce(task, c)
		if err != nil {
			return "", err
		}
		candidates = append(candidates, sql)
	}
	if len(candidates) == 1 || !p.opts.UnitTest {
		return candidates[0], nil
	}
	return p.pickConsistent(task, candidates), nil
}

// generateOnce produces one SQL candidate through a single simulated LLM
// call. Candidate index salts only the per-candidate randomness (guesses);
// evidence ingestion and retrieval are deterministic pipelines, so their
// outcomes — including evidence-induced errors — are correlated across
// candidates, which is what limits unit-test rescue under misleading
// evidence.
func (p *pipeline) generateOnce(task Task, candidate int) (string, error) {
	prompt := p.buildPrompt(task)
	var out string
	_, err := p.client.Complete(llm.Request{
		Model:  p.opts.Model,
		Prompt: prompt,
		Policy: llm.TruncateHead,
		Salt:   fmt.Sprintf("cand-%d", candidate),
		Task: func(prompt string, m llm.Model, rng *llm.Rand) (string, error) {
			out = p.assemble(task, m, candidate)
			return out, nil
		},
	})
	if err != nil {
		return "", err
	}
	return out, nil
}

// sharedRand derives a random source from example-scoped keys only — no
// model name. Every probabilistic gate compares a capability-monotone
// probability against draws from these sources, so model comparisons are
// paired (common random numbers): a stronger model never loses a draw a
// weaker one wins, which keeps the CodeS size ladder monotone at
// benchmark scale, exactly as paired evaluation on a fixed dev set does.
func sharedRand(parts ...string) *llm.Rand {
	h := fnv.New64a()
	for _, s := range parts {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return llm.NewRand(h.Sum64())
}

func (p *pipeline) buildPrompt(task Task) string {
	var b strings.Builder
	b.WriteString("Translate the question to SQL.\n")
	b.WriteString(task.DB.DDL())
	if task.Evidence != "" {
		b.WriteString("\nEvidence: " + task.Evidence)
	}
	b.WriteString("\nQuestion: " + task.Example.Question)
	return b.String()
}

// assemble performs structural assembly plus per-atom knowledge
// resolution for one candidate.
func (p *pipeline) assemble(task Task, m llm.Model, candidate int) string {
	e := task.Example
	cand := fmt.Sprintf("c%d", candidate)
	evRng := sharedRand(e.ID, task.Evidence, "ev")
	// Format disruption (Table VII mechanism): prompt-engineered agent
	// chains are tuned to BIRD-shaped evidence; join clauses derail their
	// structured ingestion. The draw is correlated across candidates
	// (same evidence, same derailment), so unit testing cannot vote it
	// away.
	if p.opts.JoinDisruption > 0 && evidence.HasJoins(task.Evidence) {
		if evRng.Chance(p.opts.JoinDisruption * (1.25 - m.Capability)) {
			return e.CorruptSQL
		}
	}
	// Structural assembly: capability versus query complexity, adjusted
	// by the pipeline's structural machinery. Structural failure is
	// mostly systematic (the model misreads the question the same way on
	// every sample), so the larger share of the failure probability is
	// drawn from the correlated source and survives candidate voting;
	// the remainder is per-candidate sampling noise. Both draws come
	// from example-scoped sources, so conditions and models are paired.
	pStruct := structuralSuccess(m.Capability, e.Complexity, p.opts.StructBoost)
	pFail := 1 - pStruct
	if sharedRand(e.ID, "struct").Chance(pFail * structCorrelated) {
		return e.CorruptSQL
	}
	residual := pFail * (1 - structCorrelated) / (1 - pFail*structCorrelated)
	if sharedRand(e.ID, "struct", cand).Chance(residual) {
		return e.CorruptSQL
	}
	frags := make([]string, len(e.Atoms))
	clauses := evidence.Parse(task.Evidence)
	for i, a := range e.Atoms {
		frags[i] = p.resolveAtom(task, a, i, cand, clauses, m, evRng)
	}
	sql, err := dataset.RenderSQL(e.SQLTemplate, frags)
	if err != nil {
		return e.CorruptSQL
	}
	// Occasional correct-but-inefficient formulation: the VES-relevant
	// failure mode (semantically equal, more rows touched).
	if sharedRand(e.ID, "ineff", cand).Chance((1 - m.Capability) * 0.30) {
		if slow, ok := wrapInefficient(sql); ok {
			return slow
		}
	}
	return sql
}

// Calibration constants for the shared core. EXPERIMENTS.md documents how
// they were fitted to the paper's Table IV anchors.
const (
	// structBase + structCap*capability is the structural ceiling of a
	// complexity-zero query.
	structBase = 0.34
	structCap  = 0.45
	// structComplexity scales the difficulty penalty.
	structComplexity = 0.38
	// structCorrelated is the share of structural failures that repeat
	// identically across candidates (systematic misreads), immune to
	// unit-test voting.
	structCorrelated = 0.70
	// guessBase/guessCap scale an atom's intrinsic guessability by model
	// capability.
	guessBase = 0.55
	guessCap  = 0.45
)

// structuralSuccess is the probability that structural assembly (joins,
// grouping, projection shape) comes out right.
func structuralSuccess(capability, complexity, boost float64) float64 {
	pOK := structBase + structCap*capability - structComplexity*complexity + boost
	if pOK < 0.05 {
		pOK = 0.05
	}
	if pOK > 0.995 {
		pOK = 0.995
	}
	return pOK
}

// resolveAtom fills one knowledge slot: evidence first, then the
// pipeline's retrieval machinery, then a capability-weighted guess.
func (p *pipeline) resolveAtom(task Task, a dataset.Atom, atomIdx int, cand string, clauses []evidence.Clause, m llm.Model, evRng *llm.Rand) string {
	e := task.Example
	ai := fmt.Sprintf("a%d", atomIdx)
	// 1. Evidence ingestion.
	if len(clauses) > 0 {
		if frag, ok := p.fromEvidence(a, atomIdx, clauses, m, evRng, task.Evidence, e.ID); ok {
			return frag
		}
	}
	// 2. Retrieval machinery.
	if frag, ok := p.fromRetrieval(task, a, atomIdx, m); ok {
		return frag
	}
	// 3. Capability-weighted guess, independent per candidate but paired
	// across models and conditions.
	pGuess := a.Guess * (guessBase + guessCap*m.Capability)
	if a.Kind == dataset.JoinPath || a.Kind == dataset.ColumnRef {
		// Schema-linking machinery lifts structural bindings.
		pGuess += p.opts.SchemaLinking * (1 - pGuess) * 0.8
	}
	if sharedRand(e.ID, "guess", ai, cand).Chance(pGuess) {
		return a.CorrectFrag
	}
	return a.WrongFrag
}

// fromEvidence resolves an atom from provided evidence clauses, modelling
// each style's ingestion behaviour.
func (p *pipeline) fromEvidence(a dataset.Atom, atomIdx int, clauses []evidence.Clause, m llm.Model, evRng *llm.Rand, evText, exampleID string) (string, bool) {
	// Join slots: concat-style systems read join hints directly;
	// prompt-engineered systems have no slot for them in their tuned
	// format and skip them.
	if a.Kind == dataset.JoinPath {
		if p.opts.ReadsJoinHints {
			for _, c := range clauses {
				if c.Join && joinMentions(c.Body, a.Table) && joinMentions(c.Body, a.Table2) {
					return c.Body, true
				}
			}
		}
		return "", false
	}

	// Format familiarity: prompt-engineered ingestion parses evidence
	// into tuned prompt slots and expects BIRD's exact clause shapes.
	// When the evidence contains any non-BIRD-format content — join
	// clauses, table-qualified bodies, bare column bindings (all styles
	// SEED emits, none of which human BIRD evidence uses) — the parsing
	// stage degrades and clauses fall back to the system's own
	// retrieval. This is why the paper's CHESS and RSL-SQL gain far less
	// from SEED than from BIRD evidence (§IV-E2).
	if p.opts.FormatStrict > 0 && hasNonBirdFormat(clauses) {
		if sharedRand(exampleID, evText, "fmt", fmt.Sprintf("a%d", atomIdx)).Chance(p.opts.FormatStrict) {
			return "", false
		}
	}
	c, ok := evidence.BestMatch(clauses, a.Term, 0.55)
	if !ok {
		return "", false
	}
	// Attention dilution (the Table I "unnecessary information" defect):
	// a pile of irrelevant non-join clauses makes the model bind the
	// wrong one, corrupting the slot rather than falling back to
	// retrieval.
	nonJoin := 0
	for _, cl := range clauses {
		if !cl.Join {
			nonJoin++
		}
	}
	if extra := nonJoin - 4; extra > 0 {
		confusion := 0.012 * float64(extra)
		if confusion > 0.30 {
			confusion = 0.30
		}
		confusion *= 1.15 - m.Capability
		if evRng.Chance(confusion) {
			return a.WrongFrag, true
		}
	}

	frag := extractFrag(c, a.Kind)
	if frag == "" {
		return "", false
	}
	return frag, true
}

// extractFrag converts a clause body into the fragment shape an atom slot
// expects.
func extractFrag(c evidence.Clause, kind dataset.AtomKind) string {
	switch kind {
	case dataset.ValueMap, dataset.Synonym:
		if lit, ok := c.ValueLiteral(); ok {
			return lit
		}
		// Comparison-shaped clauses ("opened before refers to
		// date < '1996-01-01'") carry their payload as the last literal.
		if lit, ok := lastLiteral(c.Body); ok {
			return lit
		}
		return ""
	case dataset.Threshold:
		return c.Body
	case dataset.Formula:
		// A formula slot needs an expression, not a predicate.
		if strings.ContainsAny(c.Body, "<>") {
			return ""
		}
		return c.Body
	case dataset.ColumnRef:
		return c.ColumnSide()
	default:
		return ""
	}
}

func joinMentions(body, table string) bool {
	return strings.Contains(strings.ToLower(body), strings.ToLower(table)+".")
}

// lastLiteral extracts a trailing quoted or numeric literal from a clause
// body, preserving quotes.
func lastLiteral(body string) (string, bool) {
	body = strings.TrimSpace(body)
	if strings.HasSuffix(body, "'") {
		i := strings.LastIndex(body[:len(body)-1], "'")
		if i >= 0 {
			return body[i:], true
		}
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", false
	}
	last := fields[len(fields)-1]
	if last != "" && (last[0] >= '0' && last[0] <= '9' || last[0] == '-') {
		return last, true
	}
	return "", false
}

// fromRetrieval runs the pipeline's own grounding machinery. All draws
// come from example-scoped sources so conditions and models stay paired.
func (p *pipeline) fromRetrieval(task Task, a dataset.Atom, atomIdx int, m llm.Model) (string, bool) {
	e := task.Example
	ai := fmt.Sprintf("a%d", atomIdx)
	// Application slip: retrieval output still has to be wired into the
	// right slot by the model.
	slip := (1 - m.Capability) * 0.20
	if p.opts.Values != nil && a.ValueDerivable {
		if frag, ok := p.opts.Values.FindFrag(task.DB, a); ok && !sharedRand(e.ID, "slipv", ai).Chance(slip) {
			return frag, true
		}
	}
	if p.opts.Docs > 0 && a.DocDerivable && sharedRand(e.ID, "docq", ai).Chance(p.opts.Docs) {
		if frag, ok := lookupDocs(task.DB, a); ok && !sharedRand(e.ID, "slipd", ai).Chance(slip) {
			return frag, true
		}
	}
	return "", false
}

// hasNonBirdFormat reports whether any clause deviates from the shapes
// human BIRD evidence uses: join clauses, table-qualified bodies, or bare
// column bindings.
func hasNonBirdFormat(clauses []evidence.Clause) bool {
	for _, c := range clauses {
		if c.Join {
			return true
		}
		if strings.Contains(c.ColumnSide(), ".") {
			return true
		}
	}
	return false
}

// pickConsistent executes candidates and returns a representative of the
// largest execution-equivalent group — CHESS's unit-test agent and C3's
// consistent-output voting.
func (p *pipeline) pickConsistent(task Task, candidates []string) string {
	type groupInfo struct {
		count int
		first int
	}
	groups := make(map[string]*groupInfo)
	var keys []string
	for i, sql := range candidates {
		rows, err := task.DB.Engine.Query(sql)
		var key string
		if err != nil {
			key = "error"
		} else {
			key = fingerprint(rows)
		}
		g, ok := groups[key]
		if !ok {
			g = &groupInfo{first: i}
			groups[key] = g
			keys = append(keys, key)
		}
		g.count++
	}
	best := ""
	for _, k := range keys {
		if k == "error" {
			continue
		}
		if best == "" || groups[k].count > groups[best].count {
			best = k
		}
	}
	if best == "" {
		return candidates[0]
	}
	return candidates[groups[best].first]
}

// fingerprint canonically hashes a result set (order-insensitive).
func fingerprint(rows *sqlengine.Rows) string {
	lines := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		var sb strings.Builder
		for _, v := range r {
			sb.WriteString(v.Key())
			sb.WriteByte(0)
		}
		lines = append(lines, sb.String())
	}
	// Insertion sort: result sets are small.
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j] < lines[j-1]; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	return strings.Join(lines, "\x01")
}

// wrapInefficient makes a query slower without changing its results: it
// conjoins a tautological EXISTS over the first base table, multiplying
// rows touched. Returns false when the query has no base table to lean on.
func wrapInefficient(sql string) (string, bool) {
	sel, err := sqlengine.ParseSelect(sql)
	if err != nil || len(sel.From) == 0 || sel.From[0].Table == "" {
		return "", false
	}
	exists := &sqlengine.ExistsExpr{Sub: &sqlengine.SelectStmt{
		Columns: []sqlengine.SelectItem{{Expr: &sqlengine.Literal{Val: sqlengine.Int(1)}}},
		From:    []sqlengine.FromItem{{Table: sel.From[0].Table}},
	}}
	if sel.Where != nil {
		sel.Where = &sqlengine.Binary{Op: "AND", L: sel.Where, R: exists}
	} else {
		sel.Where = exists
	}
	return sel.SQL(), true
}
