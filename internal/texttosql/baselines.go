package texttosql

import (
	"fmt"

	"repro/internal/llm"
)

// The five paper baselines as canned option sets (§IV-C). Display names
// match the paper's table rows.

// NewCHESSIRCGUT builds CHESS with information retriever, candidate
// generator and unit tester (the paper's strongest CHESS configuration).
func NewCHESSIRCGUT(client llm.Client) Generator {
	return NewGenerator(Options{
		DisplayName:    "CHESS_IR+CG+UT (GPT-4o-mini)",
		Model:          "gpt-4o-mini",
		FormatStrict:   0.85,
		JoinDisruption: 0.18,
		Values:         NewRetriever(StrategyScan),
		Docs:           0.75,
		SchemaLinking:  0.55,
		StructBoost:    -0.04,
		Candidates:     3,
		UnitTest:       true,
	}, client)
}

// NewCHESSIRSSCG builds CHESS with information retriever, schema selector
// and candidate generator. The schema selector prunes aggressively, which
// — per the §II finding the paper cites — costs structural accuracy.
func NewCHESSIRSSCG(client llm.Client) Generator {
	return NewGenerator(Options{
		DisplayName:    "CHESS_IR+SS+CG (GPT-4o-mini)",
		Model:          "gpt-4o-mini",
		FormatStrict:   0.45,
		JoinDisruption: 0.18,
		Values:         NewRetriever(StrategyScan),
		Docs:           0.75,
		SchemaLinking:  0.50,
		StructBoost:    -0.02,
		Candidates:     1,
	}, client)
}

// NewRSLSQL builds RSL-SQL: bidirectional schema linking over GPT-4o. Its
// linking machinery dominates column and join binding; it ingests evidence
// by simple prompt concatenation.
func NewRSLSQL(client llm.Client) Generator {
	return NewGenerator(Options{
		DisplayName:    "RSL-SQL (GPT-4o)",
		Model:          "gpt-4o",
		FormatStrict:   0.80,
		JoinDisruption: 0.03,
		Values:         NewRetriever(StrategyScan),
		Docs:           0.50,
		SchemaLinking:  0.90,
		StructBoost:    0.00,
		Candidates:     2,
		UnitTest:       true,
	}, client)
}

// NewCodeS builds SFT CodeS at a given parameter scale (1, 3, 7 or 15
// billion). CodeS grounds values with BM25 plus longest common substring
// and concatenates evidence with the question.
func NewCodeS(client llm.Client, billions int) Generator {
	var capability float64
	switch billions {
	case 15:
		capability = 0.80
	case 7:
		capability = 0.72
	case 3:
		capability = 0.64
	case 1:
		capability = 0.56
	default:
		panic(fmt.Sprintf("texttosql: no CodeS size %dB", billions))
	}
	return NewGenerator(Options{
		DisplayName:    fmt.Sprintf("SFT CodeS-%dB", billions),
		Model:          codesModel(billions, capability),
		ReadsJoinHints: true,
		Values:         NewRetriever(StrategyBM25),
		Docs:           0.45,
		SchemaLinking:  0.45,
		StructBoost:    0.02, // fine-tuning specialises structure
		Candidates:     1,
	}, client)
}

// codesModel registers a size-specific CodeS model variant on first use.
func codesModel(billions int, capability float64) string {
	name := fmt.Sprintf("codes-%db", billions)
	llm.RegisterModel(llm.Model{
		Name:                 name,
		ContextWindow:        8192,
		Capability:           capability,
		InstructionFollowing: 0.97,
	})
	return name
}

// NewDAILSQL builds DAIL-SQL: GPT-4 with systematically engineered prompts
// and few-shot selection, but no database retrieval machinery — which is
// why it degrades hardest without evidence (Table IV: −20.86 EX).
func NewDAILSQL(client llm.Client) Generator {
	return NewGenerator(Options{
		DisplayName:    "DAIL-SQL (GPT-4)",
		Model:          "gpt-4",
		ReadsJoinHints: true,
		Values:         nil,
		Docs:           0,
		SchemaLinking:  0.20,
		StructBoost:    -0.08,
		Candidates:     1,
	}, client)
}

// NewC3 builds C3: zero-shot ChatGPT with clear prompting, calibration
// hints and consistent-output voting.
func NewC3(client llm.Client) Generator {
	return NewGenerator(Options{
		DisplayName:    "C3 (ChatGPT)",
		Model:          "chatgpt",
		ReadsJoinHints: true,
		Values:         nil,
		Docs:           0,
		SchemaLinking:  0.50,
		StructBoost:    0.00,
		Candidates:     3,
		UnitTest:       true,
	}, client)
}
