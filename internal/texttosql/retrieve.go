package texttosql

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bm25"
	"repro/internal/dataset"
	"repro/internal/schema"
	"repro/internal/textutil"
)

// Retriever grounds question terms in database values. Two strategies
// mirror the baselines' machinery: StrategyScan is CHESS's information
// retriever (distinct-value scan with LIKE and edit-distance matching, the
// same primitives as SEED's sample SQL execution); StrategyBM25 is CodeS's
// BM25 index refined with the longest-common-substring method.
type Retriever struct {
	strategy Strategy

	mu       sync.Mutex
	distinct map[string][]string    // "db\x00table\x00col" -> values
	indexes  map[string]*indexEntry // db name -> build-once BM25 value index
}

// indexEntry wraps a lazily built value index so concurrent first lookups
// construct it exactly once, without holding the retriever lock for the
// duration of the build (the build itself issues engine queries).
type indexEntry struct {
	once sync.Once
	idx  *valueIndex
}

// Strategy selects the retrieval mechanism.
type Strategy int

// Retrieval strategies.
const (
	StrategyScan Strategy = iota
	StrategyBM25
)

// valueIndex is a BM25 index over "table column value" documents.
type valueIndex struct {
	index  *bm25.Index
	tables []string
	cols   []string
	values []string
}

// NewRetriever returns a retriever with the given strategy.
func NewRetriever(s Strategy) *Retriever {
	return &Retriever{
		strategy: s,
		distinct: make(map[string][]string),
		indexes:  make(map[string]*indexEntry),
	}
}

// Warm eagerly loads the retriever's per-database state — the distinct
// value inventories and, under StrategyBM25, the BM25 value index — so a
// serving session pays the build cost once at load time instead of on its
// first request. Warm is idempotent and safe for concurrent use.
func (r *Retriever) Warm(db *schema.DB) {
	if r.strategy == StrategyBM25 {
		r.valueIndex(db)
		return
	}
	for _, t := range db.Engine.Tables() {
		for _, c := range t.Columns {
			if c.Type == "TEXT" {
				r.distinctValues(db, t.Name, c.Name)
			}
		}
	}
}

// FindFrag grounds the atom's term in stored values, returning a SQL
// fragment for its slot. It never consults the atom's answer fields — only
// its term and kind.
func (r *Retriever) FindFrag(db *schema.DB, a dataset.Atom) (string, bool) {
	table, col, val, sim := r.search(db, a.Term)
	if sim < 0.75 {
		return "", false
	}
	switch a.Kind {
	case dataset.ColumnRef:
		return table + "." + col, true
	case dataset.ValueMap, dataset.Synonym:
		if isBareNumber(val) {
			return val, true
		}
		return "'" + val + "'", true
	default:
		return "", false
	}
}

// search finds the best (table, column, value) match for a term.
func (r *Retriever) search(db *schema.DB, term string) (table, col, val string, sim float64) {
	switch r.strategy {
	case StrategyBM25:
		return r.searchBM25(db, term)
	default:
		return r.searchScan(db, term)
	}
}

// searchScan is the CHESS-IR style scan: every text column's distinct
// values matched by equality, containment and edit distance, with a
// column-name proximity boost.
func (r *Retriever) searchScan(db *schema.DB, term string) (string, string, string, float64) {
	termStems := make(map[string]bool)
	for _, w := range textutil.ContentWords(term) {
		termStems[textutil.Stem(w)] = true
	}
	var bt, bc, bv string
	best := 0.0
	for _, t := range db.Engine.Tables() {
		for _, c := range t.Columns {
			if c.Type != "TEXT" {
				continue
			}
			for _, v := range r.distinctValues(db, t.Name, c.Name) {
				s := valueAffinity(term, v)
				if s <= 0 {
					continue
				}
				for _, w := range textutil.NormalizeIdent(c.Name) {
					if termStems[textutil.Stem(w)] {
						s += 0.15
						break
					}
				}
				if s > best {
					best, bt, bc, bv = s, t.Name, c.Name, v
				}
			}
		}
	}
	return bt, bc, bv, best
}

// searchBM25 is the CodeS path: BM25 over value documents, refined by the
// longest common substring between the term and the candidate value.
func (r *Retriever) searchBM25(db *schema.DB, term string) (string, string, string, float64) {
	idx := r.valueIndex(db)
	if idx.index.Len() == 0 {
		return "", "", "", 0
	}
	// Query expansion with world-knowledge synonyms: BM25 alone cannot
	// bridge "women" -> 'F'.
	query := term
	for _, w := range textutil.ContentWords(term) {
		for _, syn := range textutil.Synonyms(w) {
			query += " " + syn
		}
	}
	hits := idx.index.TopK(query, 5)
	var bt, bc, bv string
	best := 0.0
	for _, h := range hits {
		v := idx.values[h.Index]
		_, lcs := textutil.LongestCommonSubstring(term, v)
		score := 0.0
		switch {
		case strings.EqualFold(term, v):
			score = 1.0
		case lcs >= 3:
			score = 0.6 + 0.4*float64(lcs)/float64(maxInt(len(term), len(v)))
		}
		// Synonym knowledge closes lexical gaps BM25 cannot.
		for _, w := range textutil.ContentWords(term) {
			for _, syn := range textutil.Synonyms(w) {
				if strings.EqualFold(syn, v) {
					score = 0.9
				}
			}
		}
		if score > best {
			best, bt, bc, bv = score, idx.tables[h.Index], idx.cols[h.Index], v
		}
	}
	return bt, bc, bv, best
}

// valueAffinity scores a term against one stored value, mirroring the
// scan-retrieval primitives (exact, containment, synonym, edit distance).
func valueAffinity(term, v string) float64 {
	lt, lv := strings.ToLower(term), strings.ToLower(v)
	switch {
	case lt == lv:
		return 1.0
	case len(lt) >= 3 && strings.Contains(lv, lt):
		return 0.85
	case len(lv) >= 3 && strings.Contains(lt, lv):
		return 0.8
	}
	for _, w := range textutil.ContentWords(term) {
		for _, syn := range textutil.Synonyms(w) {
			if syn == lv {
				return 0.9
			}
		}
	}
	if s := textutil.Similarity(lt, lv); s >= 0.8 {
		return s * 0.95
	}
	return 0
}

func (r *Retriever) distinctValues(db *schema.DB, table, col string) []string {
	key := db.Name + "\x00" + strings.ToLower(table) + "\x00" + strings.ToLower(col)
	r.mu.Lock()
	vals, ok := r.distinct[key]
	r.mu.Unlock()
	if ok {
		return vals
	}
	sql := fmt.Sprintf("SELECT DISTINCT `%s` FROM `%s` ORDER BY `%s` LIMIT 40", col, table, col)
	rows, err := db.Engine.Query(sql)
	if err == nil {
		for _, row := range rows.Data {
			if len(row) > 0 && !row[0].IsNull() {
				vals = append(vals, row[0].AsText())
			}
		}
	}
	r.mu.Lock()
	if winner, ok := r.distinct[key]; ok {
		// A concurrent caller built the same inventory first; keep its
		// slice so every caller observes one identity per key.
		r.mu.Unlock()
		return winner
	}
	r.distinct[key] = vals
	r.mu.Unlock()
	return vals
}

func (r *Retriever) valueIndex(db *schema.DB) *valueIndex {
	r.mu.Lock()
	e, ok := r.indexes[db.Name]
	if !ok {
		e = &indexEntry{}
		r.indexes[db.Name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.idx = r.buildValueIndex(db) })
	return e.idx
}

func (r *Retriever) buildValueIndex(db *schema.DB) *valueIndex {
	var docs, tables, cols, values []string
	for _, t := range db.Engine.Tables() {
		for _, c := range t.Columns {
			if c.Type != "TEXT" {
				continue
			}
			for _, v := range r.distinctValues(db, t.Name, c.Name) {
				docs = append(docs, t.Name+" "+c.Name+" "+v)
				tables = append(tables, t.Name)
				cols = append(cols, c.Name)
				values = append(values, v)
			}
		}
	}
	return &valueIndex{index: bm25.New(docs), tables: tables, cols: cols, values: values}
}

// lookupDocs resolves doc-derivable atoms (value maps, ranges, documented
// formulas) from the database's description files, the way CHESS's
// information retriever surfaces description context.
func lookupDocs(db *schema.DB, a dataset.Atom) (string, bool) {
	termStems := make(map[string]bool)
	for _, w := range textutil.ContentWords(a.Term) {
		termStems[textutil.Stem(w)] = true
		for _, syn := range textutil.Synonyms(w) {
			termStems[textutil.Stem(syn)] = true
		}
	}
	covered := func(phrase string) bool {
		words := textutil.ContentWords(phrase)
		if len(words) == 0 {
			return false
		}
		hit := 0
		for _, w := range words {
			if termStems[textutil.Stem(w)] {
				hit++
			}
		}
		return float64(hit)/float64(len(words)) >= 0.67
	}
	for _, t := range db.Engine.Tables() {
		td, ok := db.Doc(t.Name)
		if !ok {
			continue
		}
		for _, cd := range td.Columns {
			switch a.Kind {
			case dataset.ValueMap, dataset.Synonym:
				for _, code := range sortedCodes(cd.ValueMap) {
					meaning := cd.ValueMap[code]
					if !covered(meaning) {
						continue
					}
					if isBareNumber(code) {
						if col, found := t.Column(cd.Column); found && col.Type != "TEXT" {
							return code, true
						}
					}
					return "'" + code + "'", true
				}
			case dataset.Threshold:
				if cd.Range == "" || !strings.Contains(cd.Range, "Normal range") {
					continue
				}
				if !covered(cd.FullName) {
					continue
				}
				if frag, ok := rangeFrag(cd, a.Term); ok {
					return frag, true
				}
			case dataset.Formula:
				if cd.Range == "" || strings.Contains(cd.Range, "Normal range") {
					continue
				}
				i := strings.Index(cd.Range, "=")
				if i < 0 {
					continue
				}
				name := strings.TrimSpace(cd.Range[:i])
				if covered(name) {
					return strings.TrimSpace(cd.Range[i+1:]), true
				}
			}
		}
	}
	return "", false
}

// rangeFrag converts a documented normal range plus a direction-bearing
// term into a predicate fragment.
func rangeFrag(cd schema.ColumnDoc, term string) (string, bool) {
	expr := cd.Range[strings.Index(cd.Range, ":")+1:]
	parts := strings.Split(expr, "<")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	var lo, hi string
	switch len(parts) {
	case 2:
		if parts[0] == "N" {
			hi = parts[1]
		} else {
			lo = parts[0]
		}
	case 3:
		lo, hi = parts[0], parts[2]
	default:
		return "", false
	}
	lt := strings.ToLower(term)
	above := strings.Contains(lt, "exceed") || strings.Contains(lt, "above") ||
		strings.Contains(lt, "beyond") || strings.Contains(lt, "over")
	below := strings.Contains(lt, "below") || strings.Contains(lt, "under")
	switch {
	case above && hi != "":
		return fmt.Sprintf("%s >= %s", cd.Column, hi), true
	case below && lo != "":
		return fmt.Sprintf("%s <= %s", cd.Column, lo), true
	}
	return "", false
}

func sortedCodes(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func isBareNumber(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if (s[i] < '0' || s[i] > '9') && s[i] != '.' && s[i] != '-' {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
