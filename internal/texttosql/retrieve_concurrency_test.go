package texttosql

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/schema"
)

// TestFindFragConcurrent drives a single Retriever — the configuration the
// serving subsystem runs, one retriever shared by every request of a
// session — from many goroutines at once, across both strategies, while
// the lazy distinct-value inventories and BM25 value indexes are still
// cold. Run with -race; every worker must also observe identical
// resolutions, since retrieval is deterministic.
func TestFindFragConcurrent(t *testing.T) {
	c := testCorpus(t)
	atoms := []dataset.Atom{
		{Kind: dataset.Synonym, Term: "women", ValueDerivable: true},
		{Kind: dataset.ValueMap, Term: "weekly issuance", ValueDerivable: true},
		{Kind: dataset.ColumnRef, Term: "gender", ValueDerivable: true},
		{Kind: dataset.ValueMap, Term: "no such thing anywhere", ValueDerivable: true},
	}
	var dbs []*schema.DB
	for _, db := range c.DBs {
		dbs = append(dbs, db)
	}
	for _, strat := range []Strategy{StrategyScan, StrategyBM25} {
		r := NewRetriever(strat)
		const workers = 16
		results := make([][]string, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, db := range dbs {
					for _, a := range atoms {
						frag, ok := r.FindFrag(db, a)
						results[w] = append(results[w], fmt.Sprintf("%s/%s=%q,%v", db.Name, a.Term, frag, ok))
					}
				}
			}(w)
		}
		wg.Wait()
		for w := 1; w < workers; w++ {
			if len(results[w]) != len(results[0]) {
				t.Fatalf("strategy %v: worker %d saw %d results, worker 0 saw %d",
					strat, w, len(results[w]), len(results[0]))
			}
			for i := range results[w] {
				if results[w][i] != results[0][i] {
					t.Errorf("strategy %v: worker %d diverged at %d: %s vs %s",
						strat, w, i, results[w][i], results[0][i])
				}
			}
		}
	}
}

// TestRetrieverWarmMatchesLazy pins Warm's contract: warming a database
// up front must leave the retriever in the same state lazy first use
// builds, and repeated or concurrent warms must not rebuild anything.
func TestRetrieverWarmMatchesLazy(t *testing.T) {
	c := testCorpus(t)
	db := c.DBs["financial"]

	warm := NewRetriever(StrategyBM25)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); warm.Warm(db) }()
	}
	wg.Wait()
	idx := warm.valueIndex(db)
	if idx == nil || idx.index.Len() == 0 {
		t.Fatal("Warm did not build the BM25 value index")
	}
	if again := warm.valueIndex(db); again != idx {
		t.Fatal("valueIndex rebuilt after Warm")
	}

	lazy := NewRetriever(StrategyBM25)
	for _, a := range []dataset.Atom{
		{Kind: dataset.Synonym, Term: "women", ValueDerivable: true},
		{Kind: dataset.ValueMap, Term: "weekly issuance", ValueDerivable: true},
	} {
		wf, wok := warm.FindFrag(db, a)
		lf, lok := lazy.FindFrag(db, a)
		if wf != lf || wok != lok {
			t.Errorf("warmed retriever resolves %q to %q,%v; lazy resolves %q,%v",
				a.Term, wf, wok, lf, lok)
		}
	}

	scan := NewRetriever(StrategyScan)
	scan.Warm(db)
	if frag, ok := scan.FindFrag(db, dataset.Atom{Kind: dataset.Synonym, Term: "women", ValueDerivable: true}); !ok || frag != "'F'" {
		t.Errorf("warmed scan retriever: FindFrag(women) = %q, %v", frag, ok)
	}
}
