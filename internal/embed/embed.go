// Package embed provides deterministic sentence embeddings standing in for
// the all-mpnet-base-v2 model that SEED uses for few-shot example selection
// (paper §III-C). Vectors are hashed bags of word unigrams, word bigrams
// and character trigrams, L2-normalised; cosine similarity between such
// vectors ranks lexically and thematically related questions highly, which
// is the only property SEED's similarity-based selection needs.
package embed

import (
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/textutil"
)

// Dim is the embedding dimensionality. 256 keeps hash collisions rare for
// question-sized inputs while staying cheap to compare.
const Dim = 256

// Vector is a fixed-size dense embedding.
type Vector [Dim]float32

// Model converts text to vectors. The zero Model is ready to use; it exists
// as a type (rather than free functions) so pipelines can hold it where the
// paper holds an embedding model handle.
//
// Embed memoises: the embedding is deterministic, and the pipelines embed
// the same texts over and over (every evidence variant re-embeds the same
// dev questions; Rank re-embeds its candidate pool on every call), so a
// bounded cache turns repeat embeddings into a map lookup. The memo is
// concurrency-safe — evidence-service workers share one Model.
type Model struct {
	mu   sync.Mutex
	memo map[string]Vector
}

// memoCap bounds the embedding memo. When full the memo resets rather than
// tracking recency: embedding workloads are corpus-sized (thousands of
// questions), so a reset is rare and refilling is cheap.
const memoCap = 8192

// NewModel returns the deterministic embedding model.
func NewModel() *Model { return &Model{} }

// Embed maps text to an L2-normalised vector. Identical text always yields
// an identical vector; repeat calls are served from the memo.
func (m *Model) Embed(text string) Vector {
	m.mu.Lock()
	if v, ok := m.memo[text]; ok {
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()

	v := embedText(text)

	m.mu.Lock()
	if m.memo == nil || len(m.memo) >= memoCap {
		m.memo = make(map[string]Vector, 256)
	}
	m.memo[text] = v
	m.mu.Unlock()
	return v
}

// embedText is the uncached embedding computation.
func embedText(text string) Vector {
	var v Vector
	words := textutil.Tokenize(text)
	for _, w := range words {
		addFeature(&v, "w:"+textutil.Stem(w), 1.0)
	}
	for i := 0; i+1 < len(words); i++ {
		addFeature(&v, "b:"+words[i]+"_"+words[i+1], 0.7)
	}
	for _, w := range words {
		for _, g := range textutil.NGrams(w, 3) {
			addFeature(&v, "g:"+g, 0.3)
		}
	}
	normalise(&v)
	return v
}

// addFeature hashes a feature into two buckets with opposite signs
// (feature hashing with sign trick) to reduce collision bias.
func addFeature(v *Vector, feat string, weight float32) {
	h := fnv.New64a()
	h.Write([]byte(feat))
	sum := h.Sum64()
	idx := int(sum % Dim)
	sign := float32(1)
	if (sum>>32)&1 == 1 {
		sign = -1
	}
	v[idx] += sign * weight
}

func normalise(v *Vector) {
	var sq float64
	for _, x := range v {
		sq += float64(x) * float64(x)
	}
	if sq == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(sq))
	for i := range v {
		v[i] *= inv
	}
}

// Cosine returns the cosine similarity of two vectors in [-1, 1]. Vectors
// from Embed are unit length, so this is their dot product.
func Cosine(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// Rank orders candidate texts by descending cosine similarity to query and
// returns candidate indices. Ties break by lower index, keeping results
// deterministic. Candidate embeddings come from the memo, so ranking the
// same pool against many queries embeds each candidate once; callers that
// already hold vectors should use RankVectors directly.
func (m *Model) Rank(query string, candidates []string) []int {
	vecs := make([]Vector, len(candidates))
	for i, c := range candidates {
		vecs[i] = m.Embed(c)
	}
	return m.RankVectors(query, vecs)
}

// RankVectors is Rank over precomputed candidate vectors: it orders the
// candidates by descending cosine similarity to query and returns their
// indices, ties broken by lower index.
func (m *Model) RankVectors(query string, vecs []Vector) []int {
	qv := m.Embed(query)
	type scored struct {
		idx int
		sim float64
	}
	items := make([]scored, len(vecs))
	for i, cv := range vecs {
		items[i] = scored{i, Cosine(qv, cv)}
	}
	// Insertion sort keeps determinism and is fast at few-shot scales.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && (items[j].sim > items[j-1].sim ||
			(items[j].sim == items[j-1].sim && items[j].idx < items[j-1].idx)); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.idx
	}
	return out
}
