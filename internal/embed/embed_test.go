package embed

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	m := NewModel()
	a := m.Embed("How many schools are in Alameda county?")
	b := m.Embed("How many schools are in Alameda county?")
	if a != b {
		t.Error("identical text must embed identically")
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	m := NewModel()
	v := m.Embed("weekly issuance accounts with a loan under 200000")
	var sq float64
	for _, x := range v {
		sq += float64(x) * float64(x)
	}
	if math.Abs(sq-1) > 1e-4 {
		t.Errorf("norm^2 = %v, want 1", sq)
	}
}

func TestCosineSelfIsOne(t *testing.T) {
	m := NewModel()
	v := m.Embed("List the elements with double bonds")
	if c := Cosine(v, v); math.Abs(c-1) > 1e-4 {
		t.Errorf("self-cosine = %v", c)
	}
}

func TestSimilarQuestionsRankHigher(t *testing.T) {
	m := NewModel()
	query := "How many clients opened their accounts in Jesenik branch were women?"
	candidates := []string{
		"How many clients opened accounts in the Pisek branch were men?", // near-duplicate
		"List all molecules with double bonds",                           // unrelated
		"What is the highest eligible free rate in Alameda county?",      // unrelated
	}
	order := m.Rank(query, candidates)
	if order[0] != 0 {
		t.Errorf("near-duplicate should rank first, got order %v", order)
	}
}

func TestRankStableUnderTies(t *testing.T) {
	m := NewModel()
	order := m.Rank("zzz unrelated", []string{"same text", "same text", "same text"})
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("tie-breaking should preserve index order: %v", order)
	}
}

// Property: cosine of any two embeddings stays within [-1, 1] + epsilon.
func TestCosineBounds(t *testing.T) {
	m := NewModel()
	f := func(a, b string) bool {
		c := Cosine(m.Embed(a), m.Embed(b))
		return c <= 1.0001 && c >= -1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: embedding is invariant to trivial whitespace padding.
func TestEmbedWhitespaceInvariant(t *testing.T) {
	m := NewModel()
	f := func(s string) bool {
		return m.Embed(s) == m.Embed("  "+s+"  ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEmbedMemoised pins that memoised embeddings are identical to fresh
// computation, across repeat calls and past the memo reset boundary.
func TestEmbedMemoised(t *testing.T) {
	m := NewModel()
	texts := []string{
		"How many accounts issue statements weekly?",
		"List the clients with loans in south Bohemia",
		"",
		"weekly weekly weekly",
	}
	for _, s := range texts {
		fresh := embedText(s)
		if m.Embed(s) != fresh {
			t.Fatalf("first Embed(%q) differs from direct computation", s)
		}
		if m.Embed(s) != fresh {
			t.Fatalf("memoised Embed(%q) differs from direct computation", s)
		}
	}
}

// TestRankVectorsMatchesRank pins that Rank and RankVectors agree.
func TestRankVectorsMatchesRank(t *testing.T) {
	m := NewModel()
	cands := []string{
		"weekly statement issuance",
		"monthly loan payments",
		"school district enrolment",
		"weekly issuance of statements",
	}
	vecs := make([]Vector, len(cands))
	for i, c := range cands {
		vecs[i] = m.Embed(c)
	}
	q := "which accounts issue weekly statements"
	a, b := m.Rank(q, cands), m.RankVectors(q, vecs)
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Rank %v != RankVectors %v", a, b)
		}
	}
}

// TestEmbedConcurrent exercises the memo under -race.
func TestEmbedConcurrent(t *testing.T) {
	m := NewModel()
	want := m.Embed("shared question")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if m.Embed("shared question") != want {
					t.Error("memoised vector drifted")
					return
				}
				m.Embed(fmt.Sprintf("unique question %d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkEmbed contrasts cold embedding with memo hits.
func BenchmarkEmbed(b *testing.B) {
	const q = "How many accounts issue statements weekly in south Bohemia?"
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			embedText(q)
		}
	})
	b.Run("memoised", func(b *testing.B) {
		m := NewModel()
		m.Embed(q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Embed(q)
		}
	})
}
