package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	m := NewModel()
	a := m.Embed("How many schools are in Alameda county?")
	b := m.Embed("How many schools are in Alameda county?")
	if a != b {
		t.Error("identical text must embed identically")
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	m := NewModel()
	v := m.Embed("weekly issuance accounts with a loan under 200000")
	var sq float64
	for _, x := range v {
		sq += float64(x) * float64(x)
	}
	if math.Abs(sq-1) > 1e-4 {
		t.Errorf("norm^2 = %v, want 1", sq)
	}
}

func TestCosineSelfIsOne(t *testing.T) {
	m := NewModel()
	v := m.Embed("List the elements with double bonds")
	if c := Cosine(v, v); math.Abs(c-1) > 1e-4 {
		t.Errorf("self-cosine = %v", c)
	}
}

func TestSimilarQuestionsRankHigher(t *testing.T) {
	m := NewModel()
	query := "How many clients opened their accounts in Jesenik branch were women?"
	candidates := []string{
		"How many clients opened accounts in the Pisek branch were men?", // near-duplicate
		"List all molecules with double bonds",                           // unrelated
		"What is the highest eligible free rate in Alameda county?",      // unrelated
	}
	order := m.Rank(query, candidates)
	if order[0] != 0 {
		t.Errorf("near-duplicate should rank first, got order %v", order)
	}
}

func TestRankStableUnderTies(t *testing.T) {
	m := NewModel()
	order := m.Rank("zzz unrelated", []string{"same text", "same text", "same text"})
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("tie-breaking should preserve index order: %v", order)
	}
}

// Property: cosine of any two embeddings stays within [-1, 1] + epsilon.
func TestCosineBounds(t *testing.T) {
	m := NewModel()
	f := func(a, b string) bool {
		c := Cosine(m.Embed(a), m.Embed(b))
		return c <= 1.0001 && c >= -1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: embedding is invariant to trivial whitespace padding.
func TestEmbedWhitespaceInvariant(t *testing.T) {
	m := NewModel()
	f := func(s string) bool {
		return m.Embed(s) == m.Embed("  "+s+"  ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
