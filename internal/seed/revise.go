package seed

import (
	"strings"

	"repro/internal/evidence"
	"repro/internal/llm"
)

// Revise strips join-path clauses from generated evidence using the
// revision model, producing the paper's SEED_revised format (Table VI:
// "we revised SEED evidence by removing join-related information, its most
// significant difference, using DeepSeek-V3"). Weak instruction following
// occasionally leaves a join clause behind.
func (p *Pipeline) Revise(ev string) (string, error) {
	if ev == "" {
		return "", nil
	}
	prompt := "Remove join-related information from the evidence, keeping everything else unchanged.\nEvidence: " + ev
	resp, err := p.client.Complete(llm.Request{
		Model:  p.cfg.ReviseModel,
		Prompt: prompt,
		Policy: llm.TruncateHead,
		Task: func(prompt string, m llm.Model, rng *llm.Rand) (string, error) {
			// Work from the prompt text so truncation is honoured.
			body := ev
			if i := strings.Index(prompt, "Evidence: "); i >= 0 {
				body = prompt[i+len("Evidence: "):]
			}
			clauses := evidence.Parse(body)
			kept := clauses[:0]
			for _, c := range clauses {
				if c.Join && !rng.Chance((1-m.InstructionFollowing)*0.1) {
					continue
				}
				kept = append(kept, c)
			}
			return evidence.Compose(kept), nil
		},
	})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}
