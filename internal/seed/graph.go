package seed

import (
	"context"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/schema"
)

// Stage names of the SEED evidence DAG, as they appear in traces, memo
// stats and /metrics.
const (
	StageKeywords = "extract_keywords"
	StageSamples  = "sample_execution"
	StageSchema   = "summarize_schema"
	StageShots    = "select_few_shots"
	StageGenerate = "generate"
)

// evInput is the per-run input of the evidence DAG.
type evInput struct {
	db       *schema.DB
	question string
}

// buildGraph declares GenerateEvidence as an explicit stage DAG:
//
//	extract_keywords ──┬─ sample_execution ──┐
//	                   └─ select_few_shots ──┼─ generate
//	summarize_schema ────────────────────────┘
//
// sample_execution and select_few_shots run in parallel once keywords are
// out, and summarize_schema overlaps with all three — on the deepseek
// variant that hides an entire LLM round trip behind the keyword/sampling
// path. Three stages are memoized with byte-stable keys:
//
//   - extract_keywords per question: the prompt is a fixed prefix plus
//     the question, so (question) fully determines the deterministic
//     model's output. Keyed without the database, a repeat question on a
//     different database still hits.
//   - summarize_schema per database alone on the non-summarizing
//     variant (the stage is then a pure function of the schema), and per
//     (db, question) when summarization is on — see schemaMemoKey for
//     why the stem set alone would not be byte-safe.
//   - select_few_shots per (db, question): shot selection is a pure
//     function of the question embedding and the database's train pool.
//
// generate and sample_execution are never memoized: generate is what the
// evserve request cache already deduplicates, and sample_execution's
// value inventories are pre-warmed maps, cheap relative to a cache layer.
func (p *Pipeline) buildGraph() {
	g := pipeline.NewGraph("seed/" + string(p.cfg.Variant))

	kw := pipeline.AddStage(g, StageKeywords, func(c *pipeline.Ctx) ([]string, error) {
		in := c.Input().(evInput)
		kws, tokens, err := p.extractKeywords(in.question)
		c.AddTokens(tokens)
		if err != nil {
			return nil, fmt.Errorf("keyword extraction: %w", err)
		}
		return kws, nil
	}, pipeline.Memoized(p.kwMemo, func(input any) (string, bool) {
		return input.(evInput).question, true
	}))

	samples := pipeline.AddStage(g, StageSamples, func(c *pipeline.Ctx) ([]Sample, error) {
		in := c.Input().(evInput)
		return p.SampleExecution(in.db, pipeline.In(c, kw)), nil
	}, pipeline.After(kw))

	visible := pipeline.AddStage(g, StageSchema, func(c *pipeline.Ctx) ([]tableView, error) {
		in := c.Input().(evInput)
		vis := p.visibleTables(in.db, in.question)
		if p.cfg.Summarize {
			kept, tokens, err := p.summarizeSchema(in.db, in.question, vis)
			c.AddTokens(tokens)
			if err != nil {
				return nil, fmt.Errorf("schema summarization: %w", err)
			}
			vis = kept
		}
		return vis, nil
	}, pipeline.Memoized(p.sumMemo, p.schemaMemoKey))

	shots := pipeline.AddStage(g, StageShots, func(c *pipeline.Ctx) ([]Shot, error) {
		in := c.Input().(evInput)
		sh := p.SelectFewShots(in.question, in.db.Name)
		if p.cfg.Summarize {
			// The deepseek variant's second summarization pass: compress
			// the exemplars to evidence-bearing lines only.
			sh = summarizeShots(sh)
		}
		return sh, nil
	}, pipeline.After(kw), pipeline.Memoized(p.shotMemo, func(input any) (string, bool) {
		in := input.(evInput)
		return in.db.Name + "\x00" + in.question, true
	}))

	gen := pipeline.AddStage(g, StageGenerate, func(c *pipeline.Ctx) (string, error) {
		in := c.Input().(evInput)
		ev, tokens, err := p.generateCounted(in.db, in.question,
			pipeline.In(c, visible), pipeline.In(c, samples), pipeline.In(c, shots))
		c.AddTokens(tokens)
		return ev, err
	}, pipeline.After(samples, visible, shots))

	p.graph = g
	p.genRef = gen
}

// schemaMemoKey keys the summarize_schema memo. Without summarization the
// stage is a pure function of the database (visibleTables ignores the
// question), so the database name alone suffices. With summarization the
// key must include the exact question text, not just its stem set: the
// pruning *scores* depend only on the stems, but the capability-gated
// keep/drop noise draws from an rng seeded by the full prompt — which
// embeds the raw question — so two stem-identical questions can legally
// prune differently, and a stems-only key would serve one question's
// summary for the other, breaking the DAG == sequential byte-identity
// guarantee. Either way the key assumes description files are installed
// before generation starts (the established DescribeDatabase-before-
// serving contract).
func (p *Pipeline) schemaMemoKey(input any) (string, bool) {
	in := input.(evInput)
	if !p.cfg.Summarize {
		return in.db.Name, true
	}
	return in.db.Name + "\x00" + in.question, true
}

// GenerateEvidenceTraced runs the evidence DAG for one question and
// returns the evidence together with its end-to-end provenance trace.
// The trace is also returned (when available) on failure, so callers can
// see which stage aborted the run. Cancelling ctx aborts in-flight
// stages.
func (p *Pipeline) GenerateEvidenceTraced(ctx context.Context, dbName, question string) (string, *pipeline.Trace, error) {
	db, ok := p.corpus.DB(dbName)
	if !ok {
		return "", nil, fmt.Errorf("seed: unknown database %q", dbName)
	}
	run, err := p.graph.Execute(ctx, evInput{db: db, question: question})
	if err != nil {
		var tr *pipeline.Trace
		if run != nil {
			tr = run.Trace()
		}
		return "", tr, fmt.Errorf("seed: %w", err)
	}
	return pipeline.Out(run, p.genRef), run.Trace(), nil
}

// GenerateEvidenceSequential is the pre-DAG reference implementation: the
// stages as a hard-coded sequential call chain, bypassing the stage graph
// and its memos. The DAG must produce byte-identical evidence — the
// golden equivalence test and benchrun -pipebench both compare against
// this path.
func (p *Pipeline) GenerateEvidenceSequential(dbName, question string) (string, error) {
	db, ok := p.corpus.DB(dbName)
	if !ok {
		return "", fmt.Errorf("seed: unknown database %q", dbName)
	}

	keywords, err := p.ExtractKeywords(question)
	if err != nil {
		return "", fmt.Errorf("seed: keyword extraction: %w", err)
	}

	samples := p.SampleExecution(db, keywords)

	visible := p.visibleTables(db, question)
	if p.cfg.Summarize {
		visible, err = p.SummarizeSchema(db, question, visible)
		if err != nil {
			return "", fmt.Errorf("seed: schema summarization: %w", err)
		}
	}

	shots := p.SelectFewShots(question, dbName)
	if p.cfg.Summarize {
		// The deepseek variant's second summarization pass: compress the
		// exemplars to evidence-bearing lines only.
		shots = summarizeShots(shots)
	}

	return p.generate(db, question, visible, samples, shots)
}

// ResetStageMemos drops every stage-memo entry, forcing the next run of
// each question down the cold path. Benchmarks use it to separate
// stage-overlap gains from memo gains.
func (p *Pipeline) ResetStageMemos() {
	p.kwMemo.Reset()
	p.sumMemo.Reset()
	p.shotMemo.Reset()
}

// StageMemoStats snapshots the per-stage memo counters, keyed by stage
// name.
func (p *Pipeline) StageMemoStats() map[string]pipeline.MemoStats {
	return map[string]pipeline.MemoStats{
		StageKeywords: p.kwMemo.Stats(),
		StageSchema:   p.sumMemo.Stats(),
		StageShots:    p.shotMemo.Stats(),
	}
}
