package seed

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/evidence"
	"repro/internal/llm"
)

func TestReviseTableDriven(t *testing.T) {
	p := deepseekPipeline(t)
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			name: "empty passes through",
			in:   "",
			want: "",
		},
		{
			name: "no joins unchanged",
			in:   "magnet refers to Magnet = 1",
			want: "magnet refers to Magnet = 1",
		},
		{
			name: "join stripped, rest preserved",
			in:   "magnet refers to Magnet = 1; join on satscores.cds = schools.CDSCode",
			want: "magnet refers to Magnet = 1",
		},
		{
			name: "multiple joins all stripped",
			in:   "weekly issuance refers to frequency = 'POPLATEK TYDNE'; join on account.district_id = district.district_id; join on loan.account_id = account.account_id",
			want: "weekly issuance refers to frequency = 'POPLATEK TYDNE'",
		},
		{
			name: "joins-only evidence is rejected entirely",
			in:   "join on satscores.cds = schools.CDSCode; join on frpm.CDSCode = schools.CDSCode",
			want: "",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := p.Revise(c.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("Revise(%q) = %q, want %q", c.in, got, c.want)
			}
			// Revision is deterministic: the same evidence revises the
			// same way every time.
			again, err := p.Revise(c.in)
			if err != nil {
				t.Fatal(err)
			}
			if again != got {
				t.Errorf("Revise not deterministic: %q then %q", got, again)
			}
		})
	}
}

// TestReviseWeakModelLeavesJoinsOccasionally pins the capability
// mechanism behind SEED_revised's imperfection (Table VII): a reviser
// with weak instruction following leaves some join clauses behind, while
// the paper's deepseek-v3 strips nearly all of them.
func TestReviseWeakModelLeavesJoinsOccasionally(t *testing.T) {
	llm.RegisterModel(llm.Model{
		Name:                 "sloppy-reviser",
		ContextWindow:        64000,
		Capability:           0.5,
		InstructionFollowing: 0, // (1-IF)*0.1 = 10% leave rate per join
	})
	cfg := ConfigDeepSeek()
	cfg.ReviseModel = "sloppy-reviser"
	weak := New(cfg, llm.NewSimulator(), testCorpus(t))
	strict := deepseekPipeline(t)

	const n = 200
	weakLeft, strictLeft := 0, 0
	for i := 0; i < n; i++ {
		ev := fmt.Sprintf("flag%d refers to F%d = 1; join on t%d.a = u%d.b", i, i, i, i)
		wr, err := weak.Revise(ev)
		if err != nil {
			t.Fatal(err)
		}
		if evidence.HasJoins(wr) {
			weakLeft++
		}
		if !strings.Contains(wr, fmt.Sprintf("F%d = 1", i)) {
			t.Fatalf("weak reviser dropped a non-join clause: %q", wr)
		}
		sr, err := strict.Revise(ev)
		if err != nil {
			t.Fatal(err)
		}
		if evidence.HasJoins(sr) {
			strictLeft++
		}
	}
	if weakLeft == 0 {
		t.Errorf("weak reviser left 0/%d joins; its 10%% leave rate should show", n)
	}
	if strictLeft >= weakLeft {
		t.Errorf("strict reviser left %d joins vs weak %d — capability gating inverted", strictLeft, weakLeft)
	}
}
