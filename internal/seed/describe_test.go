package seed

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/sqlengine"
)

func TestInferMeaning(t *testing.T) {
	cases := []struct {
		column, value, want string
	}{
		{"IsActive", "T", "true"},
		{"IsActive", "F", "false"},
		{"sex", "F", "female"},
		{"sex", "M", "male"},
		{"gender", "F", "female"},
		{"Gender", "M", "male"},
		{"client_gender", "f", "female"}, // case-insensitive value, compound column
		{"grade", "M", "m"},              // M outside a sex/gender column is just a code
		{"status", "OWNER", "owner"},     // unknown codes fall back to lowercase
		{"status", "t", "true"},
	}
	for _, c := range cases {
		if got := inferMeaning(c.column, c.value); got != c.want {
			t.Errorf("inferMeaning(%q, %q) = %q, want %q", c.column, c.value, got, c.want)
		}
	}
}

func TestDescribeTableDocumentsColumns(t *testing.T) {
	spider := dataset.BuildSpider(7)
	p := New(ConfigGPT(), llm.NewSimulator(), spider)
	db := spider.DBs["pets_1"]
	var student *sqlengine.Table
	for _, tab := range db.Engine.Tables() {
		if tab.Name == "student" {
			student = tab
		}
	}
	if student == nil {
		t.Fatal("pets_1 has no student table")
	}
	// A maximally capable model documents every eligible column.
	td := p.describeTable(db, student, llm.Model{Name: "perfect", Capability: 1}, llm.NewRand(1))
	if td.Table != "student" {
		t.Fatalf("doc table = %q", td.Table)
	}
	if len(td.Columns) != len(student.Columns) {
		t.Fatalf("documented %d of %d columns", len(td.Columns), len(student.Columns))
	}
	byName := make(map[string]int, len(td.Columns))
	for i, cd := range td.Columns {
		byName[strings.ToLower(cd.Column)] = i
		if cd.FullName == "" || cd.Description == "" {
			t.Errorf("column %s has empty doc: %+v", cd.Column, cd)
		}
	}
	// sex is a low-cardinality TEXT column: it must get a value map with
	// world-knowledge glosses.
	sex := td.Columns[byName["sex"]]
	if sex.ValueMap["F"] != "female" || sex.ValueMap["M"] != "male" {
		t.Errorf("sex value map = %v", sex.ValueMap)
	}
	// stuid is numeric: no value map.
	if vm := td.Columns[byName["stuid"]].ValueMap; len(vm) != 0 {
		t.Errorf("numeric column got a value map: %v", vm)
	}
	// Identifier expansion contract: every documented full name is the
	// space-joined NormalizeIdent form of the column identifier.
	for _, cd := range td.Columns {
		if want := strings.Join(normalizeIdent(cd.Column), " "); cd.FullName != want {
			t.Errorf("column %s full name = %q, want %q", cd.Column, cd.FullName, want)
		}
	}
}

func TestDescribeDatabaseInstallsDocsForEveryTable(t *testing.T) {
	spider := dataset.BuildSpider(7)
	p := New(ConfigGPT(), llm.NewSimulator(), spider)
	db := spider.DBs["pets_1"]
	if err := p.DescribeDatabase(db); err != nil {
		t.Fatal(err)
	}
	for _, tab := range db.Engine.Tables() {
		td, ok := db.Doc(tab.Name)
		if !ok {
			t.Errorf("table %s has no generated doc", tab.Name)
			continue
		}
		if len(td.Columns) != len(tab.Columns) {
			t.Errorf("table %s: %d column docs for %d columns", tab.Name, len(td.Columns), len(tab.Columns))
		}
	}
	// Generated docs round-trip through the CSV description-file format,
	// so re-describing is stable (the docs came from ParseTableDocCSV).
	before, _ := db.Doc("student")
	if err := p.DescribeDatabase(db); err != nil {
		t.Fatal(err)
	}
	after, _ := db.Doc("student")
	if before.CSV() != after.CSV() {
		t.Error("re-describing the same database changed the student doc")
	}
}

func TestDescribeDatabaseFeedsGeneration(t *testing.T) {
	// The end-to-end §IV-E3 property: after describing a doc-less Spider
	// database, generation can ground a synonym question in the generated
	// value map ("female students" -> sex = 'F').
	spider := dataset.BuildSpider(7)
	p := New(ConfigGPT(), llm.NewSimulator(), spider)
	db := spider.DBs["pets_1"]
	if err := p.DescribeDatabase(db); err != nil {
		t.Fatal(err)
	}
	ev, err := p.GenerateEvidence("pets_1", "How many female students have a dog?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ev, "sex = 'F'") && !strings.Contains(ev, "sex = 'f'") {
		t.Errorf("generated evidence does not use the generated value map: %q", ev)
	}
}
