package seed_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
)

// ExamplePipeline_GenerateEvidence runs the full SEED pipeline for one
// question against the synthetic BIRD corpus. The simulator is
// deterministic, so the generated evidence is bit-stable across runs.
func ExamplePipeline_GenerateEvidence() {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})
	pipeline := seed.New(seed.ConfigGPT(), llm.NewSimulator(), corpus)

	evidence, err := pipeline.GenerateEvidence("financial", "How many female clients are there?")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(evidence)
	// Output:
	// female refers to gender = 'F'; female refers to client.gender = 'F'
}

// ExamplePipeline_Revise strips join hints from deepseek-style evidence,
// producing the paper's SEED_revised format.
func ExamplePipeline_Revise() {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})
	pipeline := seed.New(seed.ConfigDeepSeek(), llm.NewSimulator(), corpus)

	revised, err := pipeline.Revise("female refers to gender = 'F'; join on client.district_id = district.district_id")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(revised)
	// Output:
	// female refers to gender = 'F'
}
