package seed

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/evidence"
	"repro/internal/llm"
)

var (
	birdOnce sync.Once
	birdCorp *dataset.Corpus
)

func testCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	birdOnce.Do(func() { birdCorp = dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7}) })
	return birdCorp
}

func gptPipeline(t *testing.T) *Pipeline {
	t.Helper()
	return New(ConfigGPT(), llm.NewSimulator(), testCorpus(t))
}

func deepseekPipeline(t *testing.T) *Pipeline {
	t.Helper()
	return New(ConfigDeepSeek(), llm.NewSimulator(), testCorpus(t))
}

func TestExtractKeywords(t *testing.T) {
	p := gptPipeline(t)
	kws, err := p.ExtractKeywords("Among the weekly issuance accounts, how many have a loan of under 200000?")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.ToLower(strings.Join(kws, "|"))
	for _, want := range []string{"weekly issuance", "loan"} {
		if !strings.Contains(joined, want) {
			t.Errorf("keywords missing %q: %v", want, kws)
		}
	}
}

func TestSampleExecutionFindsValues(t *testing.T) {
	p := gptPipeline(t)
	c := testCorpus(t)
	db := c.DBs["financial"]
	samples := p.SampleExecution(db, []string{"Jesenik", "women"})
	foundDistrict, foundGender := false, false
	for _, s := range samples {
		if s.Keyword == "Jesenik" && strings.EqualFold(s.Column, "A2") && s.Value == "Jesenik" {
			foundDistrict = true
		}
		if s.Keyword == "women" && strings.EqualFold(s.Column, "gender") && s.Value == "F" {
			foundGender = true
		}
	}
	if !foundDistrict {
		t.Errorf("sampling did not locate 'Jesenik' in district.A2: %+v", samples)
	}
	if !foundGender {
		t.Errorf("sampling did not map 'women' to gender 'F' via synonyms: %+v", samples)
	}
}

func TestSampleExecutionEditDistance(t *testing.T) {
	p := gptPipeline(t)
	db := testCorpus(t).DBs["financial"]
	// A misspelled district still matches by edit distance.
	samples := p.SampleExecution(db, []string{"Jesenik"})
	if len(samples) == 0 {
		t.Fatal("no samples for exact keyword")
	}
	fuzzy := p.SampleExecution(db, []string{"Jesennik"})
	ok := false
	for _, s := range fuzzy {
		if s.Value == "Jesenik" {
			ok = true
		}
	}
	if !ok {
		t.Errorf("edit-distance retrieval failed for 'Jesennik': %+v", fuzzy)
	}
}

func TestFewShotSelection(t *testing.T) {
	p := gptPipeline(t)
	c := testCorpus(t)
	// Pick a dev question; its train siblings share the template.
	var devQ dataset.Example
	for _, e := range c.Dev {
		if e.DB == "financial" && len(e.Atoms) > 0 {
			devQ = e
			break
		}
	}
	shots := p.SelectFewShots(devQ.Question, devQ.DB)
	if len(shots) != 5 {
		t.Fatalf("shots = %d, want 5", len(shots))
	}
	// The top shot should be lexically related to the query.
	top := strings.ToLower(shots[0].Question)
	overlap := 0
	for _, w := range strings.Fields(strings.ToLower(devQ.Question)) {
		if strings.Contains(top, w) {
			overlap++
		}
	}
	if overlap < 3 {
		t.Errorf("top shot looks unrelated:\nquery: %s\nshot:  %s", devQ.Question, shots[0].Question)
	}
}

func TestGenerateEvidenceValueMap(t *testing.T) {
	p := gptPipeline(t)
	ev, err := p.GenerateEvidence("financial", "Among the weekly issuance accounts, how many have a loan of under 200000?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ev, "POPLATEK TYDNE") {
		t.Errorf("generated evidence misses the weekly issuance code: %q", ev)
	}
	if evidence.HasJoins(ev) {
		t.Errorf("GPT variant must not emit join hints: %q", ev)
	}
}

func TestGenerateEvidenceThreshold(t *testing.T) {
	p := gptPipeline(t)
	ev, err := p.GenerateEvidence("thrombosis_prediction",
		"How many laboratory examinations show that the hematoclit level exceeded the normal range?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ev, "hct >= 52") {
		t.Errorf("generated evidence misses the HCT threshold: %q", ev)
	}
}

func TestGenerateEvidenceSynonym(t *testing.T) {
	p := gptPipeline(t)
	ev, err := p.GenerateEvidence("financial", "How many clients who opened their accounts in the Jesenik branch are women?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ev, "gender = 'F'") {
		t.Errorf("generated evidence misses the women -> 'F' synonym: %q", ev)
	}
}

func TestDeepSeekEmitsJoinHints(t *testing.T) {
	// The deepseek brain drops clauses stochastically (capability noise),
	// so assert over several magnet questions: joins must always appear,
	// and the magnet flag clause must survive in the clear majority.
	p := deepseekPipeline(t)
	questions := []string{
		"Among schools with SAT test takers of over 300, how many are magnet schools or offer a magnet program?",
		"Among schools with SAT test takers of over 400, how many are magnet schools or offer a magnet program?",
		"Among schools with SAT test takers of over 500, how many are magnet schools or offer a magnet program?",
		"Among schools with SAT test takers of over 600, how many are magnet schools or offer a magnet program?",
		"Among schools with SAT test takers of over 700, how many are magnet schools or offer a magnet program?",
	}
	joins, flags := 0, 0
	for _, q := range questions {
		ev, err := p.GenerateEvidence("california_schools", q)
		if err != nil {
			t.Fatal(err)
		}
		if evidence.HasJoins(ev) {
			joins++
		}
		if strings.Contains(ev, "Magnet = 1") {
			flags++
		}
	}
	if joins != len(questions) {
		t.Errorf("deepseek variant should always emit join hints (Table VI): %d/%d", joins, len(questions))
	}
	if flags < 3 {
		t.Errorf("magnet flag clause dropped too often: %d/%d", flags, len(questions))
	}
}

func TestReviseStripsJoins(t *testing.T) {
	p := deepseekPipeline(t)
	ev := "magnet refers to Magnet = 1; join on satscores.cds = schools.CDSCode"
	revised, err := p.Revise(ev)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(revised, "join on") {
		t.Errorf("revision left a join clause: %q", revised)
	}
	if !strings.Contains(revised, "Magnet = 1") {
		t.Errorf("revision dropped a non-join clause: %q", revised)
	}
	// Empty evidence passes through.
	if r, err := p.Revise(""); err != nil || r != "" {
		t.Errorf("empty revision = %q, %v", r, err)
	}
}

func TestGenerateEvidenceDeterministic(t *testing.T) {
	p := gptPipeline(t)
	q := "How many clients who opened their accounts in the Jesenik branch are women?"
	a, err := p.GenerateEvidence("financial", q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.GenerateEvidence("financial", q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("generation not deterministic:\n%q\n%q", a, b)
	}
}

func TestGenerateEvidenceUnknownDB(t *testing.T) {
	p := gptPipeline(t)
	if _, err := p.GenerateEvidence("nonexistent", "question"); err == nil {
		t.Error("unknown database should error")
	}
}

func TestDescribeDatabaseSpider(t *testing.T) {
	spider := dataset.BuildSpider(7)
	p := New(ConfigGPT(), llm.NewSimulator(), spider)
	db := spider.DBs["pets_1"]
	if db.HasDescriptions() {
		t.Fatal("spider DB should start without docs")
	}
	if err := p.DescribeDatabase(db); err != nil {
		t.Fatal(err)
	}
	if !db.HasDescriptions() {
		t.Fatal("DescribeDatabase produced no docs")
	}
	td, ok := db.Doc("student")
	if !ok {
		t.Fatal("student doc missing")
	}
	sex, ok := td.ColumnDoc("sex")
	if !ok {
		t.Fatal("sex column doc missing")
	}
	if sex.ValueMap["F"] != "female" || sex.ValueMap["M"] != "male" {
		t.Errorf("sex value map = %v, want female/male glosses", sex.ValueMap)
	}
}

func TestSummarizationDropsIrrelevantTables(t *testing.T) {
	p := deepseekPipeline(t)
	c := testCorpus(t)
	db := c.DBs["financial"]
	visible := p.visibleTables(db, "")
	kept, err := p.SummarizeSchema(db, "How many loans belong to clients in debt?", visible)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) == 0 || len(kept) > len(visible) {
		t.Fatalf("summarization kept %d of %d", len(kept), len(visible))
	}
	names := make(map[string]bool)
	for _, tv := range kept {
		names[strings.ToLower(tv.Table.Name)] = true
	}
	if !names["loan"] {
		t.Errorf("summarization dropped the loan table: %v", names)
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, ok := parseRange("Normal range: 29 < N < 52")
	if !ok || lo != "29" || hi != "52" {
		t.Errorf("parseRange = %q %q %v", lo, hi, ok)
	}
	lo, hi, ok = parseRange("Normal range: N < 180")
	if !ok || lo != "" || hi != "180" {
		t.Errorf("parseRange one-sided = %q %q %v", lo, hi, ok)
	}
	if _, _, ok := parseRange("no colon here"); ok {
		t.Error("malformed range should not parse")
	}
}
