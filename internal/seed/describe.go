package seed

import (
	"fmt"
	"strings"

	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// DescribeDatabase generates description files for a database that ships
// none, mirroring the paper's Spider setup (§IV-E3: "Since Spider does not
// have database description files, we generated them using DeepSeek-V3").
// For each table it expands identifier names into natural full names and
// documents low-cardinality text columns with value maps inferred from the
// data plus world knowledge. The generated docs are installed into db.Docs.
func (p *Pipeline) DescribeDatabase(db *schema.DB) error {
	for _, t := range db.Engine.Tables() {
		prompt := "Write a description file for this table, documenting column meanings and value codes.\n" + schema.TableDDL(t)
		table := t
		resp, err := p.client.Complete(llm.Request{
			Model:  p.cfg.ReviseModel,
			Prompt: prompt,
			Policy: llm.TruncateHead,
			Task: func(prompt string, m llm.Model, rng *llm.Rand) (string, error) {
				td := p.describeTable(db, table, m, rng)
				return td.CSV(), nil
			},
		})
		if err != nil {
			return fmt.Errorf("seed: describing %s: %w", t.Name, err)
		}
		td, err := schema.ParseTableDocCSV(t.Name, resp.Text)
		if err != nil {
			return fmt.Errorf("seed: parsing generated description for %s: %w", t.Name, err)
		}
		db.SetDoc(td)
	}
	return nil
}

// describeTable builds one generated TableDoc.
func (p *Pipeline) describeTable(db *schema.DB, t *sqlengine.Table, m llm.Model, rng *llm.Rand) *schema.TableDoc {
	td := &schema.TableDoc{
		Table:       t.Name,
		Description: "auto-generated description of " + strings.Join(normalizeIdent(t.Name), " "),
	}
	for _, col := range t.Columns {
		cd := schema.ColumnDoc{
			Column:      col.Name,
			FullName:    strings.Join(normalizeIdent(col.Name), " "),
			Description: "the " + strings.Join(normalizeIdent(col.Name), " ") + " of the " + strings.Join(normalizeIdent(t.Name), " "),
		}
		// Document coded values for low-cardinality text columns; a weak
		// model occasionally skips a column.
		if col.Type == "TEXT" && !rng.Chance((1-m.Capability)*0.2) {
			vals := p.distinctValues(db, t.Name, col.Name)
			if len(vals) > 0 && len(vals) <= 8 {
				vm := make(map[string]string, len(vals))
				for _, v := range vals {
					vm[v] = inferMeaning(col.Name, v)
				}
				cd.ValueMap = vm
			}
		}
		td.Columns = append(td.Columns, cd)
	}
	return td
}

// inferMeaning is the world-knowledge half of description generation: it
// expands common coded values based on the column context, the way an LLM
// glosses "T"/"F" or "M"/"F" columns.
func inferMeaning(column, value string) string {
	colWords := strings.Join(normalizeIdent(column), " ")
	switch strings.ToUpper(value) {
	case "T":
		return "true"
	case "F":
		if strings.Contains(colWords, "sex") || strings.Contains(colWords, "gender") {
			return "female"
		}
		return "false"
	case "M":
		if strings.Contains(colWords, "sex") || strings.Contains(colWords, "gender") {
			return "male"
		}
	}
	return strings.ToLower(value)
}
