// Package seed implements the paper's contribution: SEED (System for
// Evidence Extraction and Domain knowledge generation). Given only a
// question and a database — schema, description files, and values — it
// generates BIRD-style evidence automatically through three stages
// (paper §III): schema summarization (for context-limited base models),
// sample SQL execution, and few-shot-prompted evidence generation. Two
// configurations mirror the paper's Fig. 3 architectures: ConfigGPT (full
// schema, gpt-4o-mini for sampling, gpt-4o for generation) and
// ConfigDeepSeek (deepseek-r1 everywhere, schema summarized twice, join
// hints leaking into the output — the Table VI format difference). A
// Reviser strips those join hints to produce SEED_revised (Table VII).
package seed

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/pipeline"
	"repro/internal/schema"
	"repro/internal/sqlengine"
	"repro/internal/textutil"
)

// Thin aliases keep the stage code readable.
func contentWords(s string) []string   { return textutil.ContentWords(s) }
func stem(s string) string             { return textutil.Stem(s) }
func synonyms(s string) []string       { return textutil.Synonyms(s) }
func similarity(a, b string) float64   { return textutil.Similarity(a, b) }
func tokenize(s string) []string       { return textutil.Tokenize(s) }
func normalizeIdent(s string) []string { return textutil.NormalizeIdent(s) }

// Variant names a SEED architecture.
type Variant string

// SEED variants, as named in the paper's tables.
const (
	VariantGPT      Variant = "seed_gpt"
	VariantDeepSeek Variant = "seed_deepseek"
)

// Config selects the SEED architecture and its base models.
type Config struct {
	// Variant names the architecture this configuration realises.
	Variant Variant
	// SampleModel runs keyword extraction and sample-SQL planning
	// (gpt-4o-mini in the paper's GPT variant).
	SampleModel string
	// GenerateModel runs evidence generation (gpt-4o / deepseek-r1).
	GenerateModel string
	// ReviseModel strips join hints for SEED_revised (deepseek-v3).
	ReviseModel string
	// Summarize enables schema summarization before generation. The
	// paper's deepseek variant summarizes twice: once for the target
	// database, once for the few-shot examples.
	Summarize bool
	// EmitJoinHints lets generated evidence spell out join paths; the
	// deepseek variant does this (Table VI), the GPT variant does not.
	EmitJoinHints bool
	// FewShot is the number of training exemplars in the prompt: the
	// most similar question overall plus same-database neighbours, five
	// in total in the paper.
	FewShot int
	// MaxDistinct caps the per-column value inventory pulled by sample
	// SQL execution.
	MaxDistinct int
}

// ConfigGPT returns the Fig. 3a architecture.
func ConfigGPT() Config {
	return Config{
		Variant:       VariantGPT,
		SampleModel:   "gpt-4o-mini",
		GenerateModel: "gpt-4o",
		ReviseModel:   "deepseek-v3",
		Summarize:     false,
		EmitJoinHints: false,
		FewShot:       5,
		MaxDistinct:   30,
	}
}

// ConfigDeepSeek returns the Fig. 3b architecture.
func ConfigDeepSeek() Config {
	return Config{
		Variant:       VariantDeepSeek,
		SampleModel:   "deepseek-r1",
		GenerateModel: "deepseek-r1",
		ReviseModel:   "deepseek-v3",
		Summarize:     true,
		EmitJoinHints: true,
		FewShot:       5,
		MaxDistinct:   30,
	}
}

// Pipeline generates evidence for questions against one corpus. It is
// safe for concurrent use after construction: GenerateEvidence runs its
// stages as a concurrent DAG, and many callers may generate at once.
type Pipeline struct {
	cfg      Config
	client   llm.Client
	corpus   *dataset.Corpus
	embedder *embed.Model

	trainVecs []embed.Vector
	trainByDB map[string][]int // corpus.Train indices per database

	valueMu    sync.RWMutex
	valueCache map[string][]string // "db\x00table\x00col" -> distinct values

	// The evidence stage graph (see buildGraph in graph.go) and the
	// per-stage memos behind its warm partial hits.
	graph  *pipeline.Graph
	genRef pipeline.Ref[string]

	kwMemo   *pipeline.Memo // extract_keywords, keyed by question
	sumMemo  *pipeline.Memo // summarize_schema, keyed by (db, question stems)
	shotMemo *pipeline.Memo // select_few_shots, keyed by (db, question)
}

// New builds a pipeline over a corpus. Train-split questions are embedded
// eagerly: they form the few-shot retrieval pool.
func New(cfg Config, client llm.Client, corpus *dataset.Corpus) *Pipeline {
	p := &Pipeline{
		cfg:        cfg,
		client:     client,
		corpus:     corpus,
		embedder:   embed.NewModel(),
		trainByDB:  make(map[string][]int),
		valueCache: make(map[string][]string),
		kwMemo:     pipeline.NewMemo(4096, 16),
		sumMemo:    pipeline.NewMemo(2048, 16),
		shotMemo:   pipeline.NewMemo(4096, 16),
	}
	p.trainVecs = make([]embed.Vector, len(corpus.Train))
	for i, ex := range corpus.Train {
		p.trainVecs[i] = p.embedder.Embed(ex.Question)
		p.trainByDB[ex.DB] = append(p.trainByDB[ex.DB], i)
	}
	// Pre-warm the value inventories so concurrent generation does not
	// race on the cache.
	for _, db := range corpus.DBs {
		for _, t := range db.Engine.Tables() {
			for _, col := range t.Columns {
				if col.Type == "TEXT" {
					p.distinctValues(db, t.Name, col.Name)
				}
			}
		}
	}
	p.buildGraph()
	return p
}

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// GenerateEvidence runs the full SEED pipeline for one question. It uses
// only public database information (schema, description files, values) and
// the training split — never the example's gold SQL or gold evidence.
//
// The stages execute as a concurrent DAG (sample execution and few-shot
// selection in parallel after keyword extraction, schema summarization
// overlapping both) with per-stage memoization; output is byte-identical
// to GenerateEvidenceSequential. Callers that want the per-stage
// provenance trace should use GenerateEvidenceTraced.
func (p *Pipeline) GenerateEvidence(dbName, question string) (string, error) {
	ev, _, err := p.GenerateEvidenceTraced(context.Background(), dbName, question)
	return ev, err
}

// visibleTables returns the full table list (no summarization): every
// table with its doc, in schema order.
func (p *Pipeline) visibleTables(db *schema.DB, question string) []tableView {
	var out []tableView
	for _, t := range db.Engine.Tables() {
		tv := tableView{Table: t}
		if td, ok := db.Doc(t.Name); ok {
			tv.Doc = td
		}
		out = append(out, tv)
	}
	return out
}

// tableView is one table as seen by the generation stage: its engine
// schema plus (possibly pruned) documentation.
type tableView struct {
	Table *sqlengine.Table
	Doc   *schema.TableDoc
}

// distinctValues returns (and caches) the distinct TEXT values of a
// column, capped at MaxDistinct, pulled with real sample SQL against the
// engine — the paper's "unique values are extracted regardless of the data
// type". The cache is prewarmed in New, but lookups of columns added later
// (e.g. by generated description files) must stay safe under the evserve
// worker pool, so access is lock-guarded.
func (p *Pipeline) distinctValues(db *schema.DB, table, column string) []string {
	key := db.Name + "\x00" + strings.ToLower(table) + "\x00" + strings.ToLower(column)
	p.valueMu.RLock()
	vals, ok := p.valueCache[key]
	p.valueMu.RUnlock()
	if ok {
		return vals
	}
	max := p.cfg.MaxDistinct
	if max <= 0 {
		max = 30
	}
	sql := fmt.Sprintf("SELECT DISTINCT %s FROM %s ORDER BY %s LIMIT %d",
		quoteIdent(column), quoteIdent(table), quoteIdent(column), max)
	rows, err := db.Engine.Query(sql)
	vals = nil
	if err == nil {
		for _, r := range rows.Data {
			if len(r) > 0 && !r[0].IsNull() {
				vals = append(vals, r[0].AsText())
			}
		}
	}
	p.valueMu.Lock()
	p.valueCache[key] = vals
	p.valueMu.Unlock()
	return vals
}

func quoteIdent(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return "`" + s + "`"
		}
	}
	return s
}

// stemsWithSynonyms returns the stemmed content words of text expanded
// with the world-knowledge synonym dictionary.
func stemsWithSynonyms(text string) map[string]bool {
	out := make(map[string]bool)
	for _, w := range contentWords(text) {
		out[stem(w)] = true
		for _, s := range synonyms(w) {
			out[stem(s)] = true
		}
	}
	return out
}

// sortedKeys returns map keys in sorted order for deterministic iteration.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
