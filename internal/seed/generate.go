package seed

import (
	"fmt"
	"strings"

	"repro/internal/evidence"
	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// generate runs the evidence-generation stage: it assembles the paper's
// prompt (instruction, few-shot exemplars, sample SQL results, schema and
// question — §III-C) and completes it with the generation model. The task
// logic derives evidence clauses only from what is visible in the
// post-truncation prompt: description-file value maps and ranges, sampled
// values, and exemplar formulas.
func (p *Pipeline) generate(db *schema.DB, question string, visible []tableView, samples []Sample, shots []Shot) (string, error) {
	ev, _, err := p.generateCounted(db, question, visible, samples, shots)
	return ev, err
}

// generateCounted is generate plus the request's token spend, for stage
// traces.
func (p *Pipeline) generateCounted(db *schema.DB, question string, visible []tableView, samples []Sample, shots []Shot) (string, int, error) {
	prompt := buildPrompt(db, question, visible, samples, shots)
	resp, err := p.client.Complete(llm.Request{
		Model:  p.cfg.GenerateModel,
		Prompt: prompt,
		Policy: llm.TruncateHead,
		Salt:   "evidence-gen",
		Task: func(prompt string, m llm.Model, rng *llm.Rand) (string, error) {
			return p.evidenceBrain(prompt, m, rng, db, question, visible, samples, shots), nil
		},
	})
	if err != nil {
		return "", 0, err
	}
	return resp.Text, resp.PromptTokens + resp.CompletionTokens, nil
}

// Prompt section markers. Head-truncation drops leading sections first, so
// the brain checks marker visibility before using a section's content —
// over-window prompts genuinely lose information.
const (
	markShots    = "### EXAMPLES"
	markSamples  = "### SAMPLE SQL RESULTS"
	markSchema   = "### SCHEMA"
	markQuestion = "### QUESTION"
)

func tableMarker(name string) string { return "[TBL:" + strings.ToLower(name) + "]" }

func buildPrompt(db *schema.DB, question string, visible []tableView, samples []Sample, shots []Shot) string {
	var b strings.Builder
	b.WriteString("Generate the evidence needed to write SQL for the question, in the style of the examples.\n")
	b.WriteString(markShots + "\n")
	for _, s := range shots {
		fmt.Fprintf(&b, "Q: %s\nEvidence: %s\n", s.Question, s.Evidence)
	}
	b.WriteString(markSamples + "\n")
	for _, s := range samples {
		fmt.Fprintf(&b, "%s %s.%s contains '%s' (matches keyword '%s')\n",
			tableMarker(s.Table), s.Table, s.Column, s.Value, s.Keyword)
	}
	b.WriteString(markSchema + "\n")
	for _, tv := range visible {
		b.WriteString(tableMarker(tv.Table.Name) + "\n")
		b.WriteString(schema.TableDDL(tv.Table) + "\n")
		if tv.Doc != nil {
			b.WriteString(tv.Doc.CSV())
		}
	}
	b.WriteString(markQuestion + "\n" + question + "\n")
	return b.String()
}

// evidenceBrain is the deterministic model of what the generation LLM
// emits. Every clause it produces is grounded in a prompt-visible source;
// capability and instruction-following parameters gate omissions and
// format drift.
func (p *Pipeline) evidenceBrain(prompt string, m llm.Model, rng *llm.Rand, db *schema.DB, question string, visible []tableView, samples []Sample, shots []Shot) string {
	qStems := stemsWithSynonyms(question)
	qLower := strings.ToLower(question)

	var clauses []evidence.Clause
	add := func(c evidence.Clause) {
		for _, prev := range clauses {
			if prev.Body == c.Body && prev.Term == c.Term {
				return
			}
		}
		clauses = append(clauses, c)
	}
	mentionedTables := make(map[string]bool)

	// 1. Description-file value maps: codes whose documented meaning is
	// covered by the question.
	for _, tv := range visible {
		if tv.Doc == nil || !strings.Contains(prompt, tableMarker(tv.Table.Name)) {
			continue
		}
		for _, cd := range tv.Doc.Columns {
			for _, code := range sortedKeys(cd.ValueMap) {
				meaning := cd.ValueMap[code]
				if !phraseCovered(meaning, qStems) {
					continue
				}
				lit := "'" + code + "'"
				if isNumericLiteral(code) && columnIsNumeric(tv.Table, cd.Column) {
					lit = code
				}
				add(evidence.Clause{
					Term: meaning,
					Body: fmt.Sprintf("%s = %s", cd.Column, lit),
				})
				mentionedTables[strings.ToLower(tv.Table.Name)] = true
			}
			// 2. Ranges and documented formulas.
			if cd.Range != "" {
				if c, ok := rangeClause(cd, question, qLower, qStems); ok {
					add(c)
					mentionedTables[strings.ToLower(tv.Table.Name)] = true
				}
			}
		}
	}

	// 3. Sampled values: bind question keywords to the columns that hold
	// them. Only the best sample per keyword is used, and keywords that
	// bind the same (column, value) collapse to the shortest keyword —
	// n-gram keyword extraction otherwise floods the evidence with
	// redundant bindings that crowd out the clauses other terms need.
	if strings.Contains(prompt, markSamples) {
		bestByKw := make(map[string]Sample)
		for _, s := range samples {
			if !strings.Contains(prompt, tableMarker(s.Table)) {
				continue
			}
			if prev, ok := bestByKw[strings.ToLower(s.Keyword)]; !ok || s.Sim > prev.Sim {
				bestByKw[strings.ToLower(s.Keyword)] = s
			}
		}
		byBinding := make(map[string]Sample)
		for _, kw := range sortedSampleKeys(bestByKw) {
			s := bestByKw[kw]
			bind := strings.ToLower(s.Table + "\x00" + s.Column + "\x00" + s.Value)
			if prev, ok := byBinding[bind]; !ok || len(s.Keyword) < len(prev.Keyword) {
				byBinding[bind] = s
			}
		}
		bestByKw = make(map[string]Sample, len(byBinding))
		for _, s := range byBinding {
			bestByKw[strings.ToLower(s.Keyword)] = s
		}
		for _, kw := range sortedSampleKeys(bestByKw) {
			s := bestByKw[kw]
			if strings.EqualFold(s.Value, s.Keyword) {
				// The keyword is itself a stored value: emit a column
				// binding (the "Fremont" case).
				add(evidence.Clause{
					Term: s.Keyword,
					Body: fmt.Sprintf("%s.%s", s.Table, s.Column),
				})
			} else {
				add(evidence.Clause{
					Term: s.Keyword,
					Body: fmt.Sprintf("%s.%s = '%s'", s.Table, s.Column, s.Value),
				})
			}
			mentionedTables[strings.ToLower(s.Table)] = true
		}
	}

	// 4. Formula clauses copied from visible exemplars whose terms the
	// question covers (the numeric-reasoning category: SEED can only get
	// these from the training examples).
	if strings.Contains(prompt, markShots) {
		for _, shot := range shots {
			for _, c := range evidence.Parse(shot.Evidence) {
				if evidence.Categorize(c) != evidence.CategoryNumeric || c.Term == "" {
					continue
				}
				if phraseCovered(c.Term, qStems) {
					add(c)
				}
			}
		}
	}

	// 5. Capability and instruction-following noise: weaker models omit
	// clauses or let value casing drift.
	kept := clauses[:0]
	for _, c := range clauses {
		if rng.Chance(0.04 + (1-m.Capability)*0.35) {
			continue
		}
		if rng.Chance((1 - m.InstructionFollowing) * 0.04) {
			c = lowercaseLiteral(c)
		}
		kept = append(kept, c)
	}
	clauses = kept

	// 6. Join hints (deepseek variant): spell out foreign-key paths among
	// the tables the evidence mentions — the Table VI format difference.
	if p.cfg.EmitJoinHints {
		for _, tv := range visible {
			child := strings.ToLower(tv.Table.Name)
			for _, fk := range tv.Table.ForeignKeys {
				parent := strings.ToLower(fk.ParentTable)
				if mentionedTables[child] || mentionedTables[parent] {
					clauses = append(clauses, evidence.Clause{
						Join: true,
						Body: fmt.Sprintf("%s.%s = %s.%s", tv.Table.Name, fk.Column, fk.ParentTable, fk.ParentColumn),
					})
				}
			}
		}
	}

	return evidence.Compose(clauses)
}

// phraseCovered reports whether most stemmed content words of phrase occur
// in the question stems (with synonym expansion already applied).
func phraseCovered(phrase string, qStems map[string]bool) bool {
	words := contentWords(phrase)
	if len(words) == 0 {
		return false
	}
	hit := 0
	for _, w := range words {
		if qStems[stem(w)] {
			hit++
			continue
		}
		for _, syn := range synonyms(w) {
			if qStems[stem(syn)] {
				hit++
				break
			}
		}
	}
	return float64(hit)/float64(len(words)) >= 0.67
}

// rangeClause turns a description-file Range note into a clause when the
// question asks about that measurement with a direction word.
func rangeClause(cd schema.ColumnDoc, question, qLower string, qStems map[string]bool) (evidence.Clause, bool) {
	// The measurement must be named in the question.
	named := false
	for _, w := range contentWords(cd.FullName) {
		if qStems[stem(w)] {
			named = true
			break
		}
	}
	if !named {
		return evidence.Clause{}, false
	}
	// Formula-style notes: "eligible free rate = FreeMealCount / Enrollment".
	if !strings.Contains(cd.Range, "Normal range") && strings.Contains(cd.Range, "=") {
		i := strings.Index(cd.Range, "=")
		term := strings.TrimSpace(cd.Range[:i])
		expr := strings.TrimSpace(cd.Range[i+1:])
		if phraseCovered(term, qStems) {
			return evidence.Clause{Term: term, Body: expr}, true
		}
		return evidence.Clause{}, false
	}
	// Normal-range notes: "Normal range: 29 < N < 52" or "Normal range: N < 180".
	lo, hi, ok := parseRange(cd.Range)
	if !ok {
		return evidence.Clause{}, false
	}
	above := strings.Contains(qLower, "exceed") || strings.Contains(qLower, "above") ||
		strings.Contains(qLower, "beyond") || strings.Contains(qLower, "over") ||
		strings.Contains(qLower, "higher")
	below := strings.Contains(qLower, "below") || strings.Contains(qLower, "under") ||
		strings.Contains(qLower, "lower")
	switch {
	case above && hi != "":
		return evidence.Clause{
			Term: cd.FullName + " exceeded the normal range",
			Body: fmt.Sprintf("%s >= %s", cd.Column, hi),
		}, true
	case below && lo != "":
		return evidence.Clause{
			Term: cd.FullName + " below the normal range",
			Body: fmt.Sprintf("%s <= %s", cd.Column, lo),
		}, true
	}
	return evidence.Clause{}, false
}

// parseRange reads "Normal range: A < N < B" or "Normal range: N < B",
// returning the bounds as strings (empty when absent).
func parseRange(s string) (lo, hi string, ok bool) {
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", false
	}
	expr := strings.TrimSpace(s[i+1:])
	parts := strings.Split(expr, "<")
	for j := range parts {
		parts[j] = strings.TrimSpace(parts[j])
	}
	switch len(parts) {
	case 2: // N < B
		if parts[0] == "N" {
			return "", parts[1], true
		}
		return parts[0], "", true
	case 3: // A < N < B
		if parts[1] == "N" {
			return parts[0], parts[2], true
		}
	}
	return "", "", false
}

func isNumericLiteral(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if (s[i] < '0' || s[i] > '9') && s[i] != '.' && s[i] != '-' {
			return false
		}
	}
	return true
}

func columnIsNumeric(t *sqlengine.Table, col string) bool {
	c, ok := t.Column(col)
	return ok && (c.Type == "INTEGER" || c.Type == "REAL")
}

func lowercaseLiteral(c evidence.Clause) evidence.Clause {
	i := strings.Index(c.Body, "'")
	j := strings.LastIndex(c.Body, "'")
	if i < 0 || j <= i {
		return c
	}
	c.Body = c.Body[:i+1] + strings.ToLower(c.Body[i+1:j]) + c.Body[j:]
	return c
}

func sortedSampleKeys(m map[string]Sample) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
