package seed

import (
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/schema"
)

// --- Stage 1: keyword extraction (paper §III-B, first step) ---

// ExtractKeywords asks the sample-stage model for the question's
// column-like and value-like keywords: content words plus multi-word
// phrases. Weaker models drop keywords occasionally.
func (p *Pipeline) ExtractKeywords(question string) ([]string, error) {
	kws, _, err := p.extractKeywords(question)
	return kws, err
}

// extractKeywords is ExtractKeywords plus the request's token spend, for
// stage traces.
func (p *Pipeline) extractKeywords(question string) ([]string, int, error) {
	prompt := "Extract the keywords naming database columns and values from the question.\nQuestion: " + question
	resp, err := p.client.Complete(llm.Request{
		Model:  p.cfg.SampleModel,
		Prompt: prompt,
		Policy: llm.TruncateHead,
		Task: func(prompt string, m llm.Model, rng *llm.Rand) (string, error) {
			q := question
			if i := strings.LastIndex(prompt, "Question: "); i >= 0 {
				q = prompt[i+len("Question: "):]
			}
			words := contentWords(q)
			var kws []string
			seen := make(map[string]bool)
			add := func(k string) {
				if k == "" || seen[k] {
					return
				}
				seen[k] = true
				// Capability-gated omission: weak models miss keywords.
				if rng.Chance((1 - m.Capability) * 0.2) {
					return
				}
				kws = append(kws, k)
			}
			// Multi-word phrases first (bigrams and trigrams of adjacent
			// content words preserve value phrases like "weekly issuance"
			// or "Marvel Comics").
			for i := 0; i+1 < len(words); i++ {
				add(words[i] + " " + words[i+1])
				if i+2 < len(words) {
					add(words[i] + " " + words[i+1] + " " + words[i+2])
				}
			}
			for _, w := range words {
				add(w)
			}
			// Preserve original-cased tokens too: cased names like
			// "Fremont" or "TR024" are value keywords.
			for _, tok := range strings.Fields(q) {
				cleaned := strings.Trim(tok, ".,?!\"'()")
				if cleaned != "" && cleaned != strings.ToLower(cleaned) {
					add(cleaned)
				}
			}
			return strings.Join(kws, "\n"), nil
		},
	})
	if err != nil {
		return nil, 0, err
	}
	var out []string
	for _, line := range strings.Split(resp.Text, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out, resp.PromptTokens + resp.CompletionTokens, nil
}

// --- Stage 2: sample SQL execution (paper §III-B) ---

// Sample is one value surfaced by sample SQL execution: a keyword matched
// against a stored column value.
type Sample struct {
	// Table and Column locate where the value is stored.
	Table  string
	Column string
	// Keyword is the question keyword that matched.
	Keyword string
	// Value is the stored value the keyword matched against.
	Value string
	// Sim is the match strength: 1 for exact, less for LIKE and
	// edit-distance matches.
	Sim float64
}

// SampleExecution pairs extracted keywords with candidate columns and
// inspects real database values: unique values per column, containment
// (the LIKE path) and edit-distance neighbours, exactly the three
// retrieval modes of §III-B.
func (p *Pipeline) SampleExecution(db *schema.DB, keywords []string) []Sample {
	var out []Sample
	questionStems := make(map[string]bool)
	for _, k := range keywords {
		for _, w := range contentWords(k) {
			questionStems[stem(w)] = true
		}
	}
	for _, t := range db.Engine.Tables() {
		for _, col := range t.Columns {
			if col.Type != "TEXT" {
				continue
			}
			values := p.distinctValues(db, t.Name, col.Name)
			for _, kw := range keywords {
				best := Sample{Table: t.Name, Column: col.Name, Keyword: kw}
				for _, v := range values {
					sim := matchScore(kw, v)
					if sim > best.Sim {
						best.Sim = sim
						best.Value = v
					}
				}
				if best.Sim >= 0.7 {
					// Column-name proximity boost: "Fresno county"
					// prefers the County column over City.
					for _, w := range normalizeIdent(col.Name) {
						if questionStems[stem(w)] {
							best.Sim += 0.2
							break
						}
					}
					out = append(out, best)
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Sim > out[j].Sim })
	return out
}

// matchScore scores keyword-to-value affinity: exact (case-insensitive)
// match, containment either way (the LIKE path), synonym-dictionary match,
// then edit-distance similarity. Containment requires the contained side
// to span at least three characters — single-letter codes such as 'M' or
// 'A' must not match inside arbitrary words.
func matchScore(kw, v string) float64 {
	lk, lv := strings.ToLower(kw), strings.ToLower(v)
	if lk == lv {
		return 1.0
	}
	if len(lk) >= 3 && strings.Contains(lv, lk) {
		return 0.85
	}
	if len(lv) >= 3 && strings.Contains(lk, lv) {
		return 0.8
	}
	for _, syn := range synonyms(lk) {
		if syn == lv {
			return 0.9
		}
	}
	if s := similarity(lk, lv); s >= 0.75 {
		return s * 0.9
	}
	return 0
}

// --- Stage 3: schema summarization (paper §III-A) ---

// SummarizeSchema prunes the schema to question-relevant tables using the
// generation model. Mistakes are capability-gated: a weak model may drop a
// borderline-relevant table, and anything dropped is genuinely invisible
// to the downstream generation stage.
func (p *Pipeline) SummarizeSchema(db *schema.DB, question string, visible []tableView) ([]tableView, error) {
	kept, _, err := p.summarizeSchema(db, question, visible)
	return kept, err
}

// summarizeSchema is SummarizeSchema plus the request's token spend, for
// stage traces.
func (p *Pipeline) summarizeSchema(db *schema.DB, question string, visible []tableView) ([]tableView, int, error) {
	prompt := "Remove schema information irrelevant to the question.\nSchema: " + db.DDL() + "\nQuestion: " + question
	type scored struct {
		tv    tableView
		score float64
	}
	var result []tableView
	resp, err := p.client.Complete(llm.Request{
		Model:  p.cfg.GenerateModel,
		Prompt: prompt,
		Policy: llm.TruncateHead,
		Task: func(prompt string, m llm.Model, rng *llm.Rand) (string, error) {
			qStems := stemsWithSynonyms(question)
			var ranked []scored
			for _, tv := range visible {
				s := relevanceScore(tv, qStems)
				ranked = append(ranked, scored{tv, s})
			}
			sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
			var kept []tableView
			var names []string
			for i, r := range ranked {
				if r.score <= 0 && i > 0 {
					continue
				}
				// Capability-gated pruning mistake on borderline tables.
				if i >= 2 && r.score < 0.5 && rng.Chance((1-m.Capability)*0.4) {
					continue
				}
				kept = append(kept, r.tv)
				names = append(names, r.tv.Table.Name)
			}
			if len(kept) == 0 && len(ranked) > 0 {
				kept = append(kept, ranked[0].tv)
				names = append(names, ranked[0].tv.Table.Name)
			}
			result = kept
			return "kept: " + strings.Join(names, ", "), nil
		},
	})
	if err != nil {
		return nil, 0, err
	}
	// Restore schema order for deterministic downstream iteration.
	orderOf := make(map[string]int)
	for i, tv := range visible {
		orderOf[tv.Table.Name] = i
	}
	sort.SliceStable(result, func(i, j int) bool {
		return orderOf[result[i].Table.Name] < orderOf[result[j].Table.Name]
	})
	return result, resp.PromptTokens + resp.CompletionTokens, nil
}

// relevanceScore measures question-table affinity over table name, column
// names, documented full names and documented value meanings.
func relevanceScore(tv tableView, qStems map[string]bool) float64 {
	score := 0.0
	for _, w := range normalizeIdent(tv.Table.Name) {
		if qStems[stem(w)] {
			score += 1.0
		}
	}
	for _, col := range tv.Table.Columns {
		for _, w := range normalizeIdent(col.Name) {
			if qStems[stem(w)] {
				score += 0.5
			}
		}
	}
	if tv.Doc != nil {
		for _, cd := range tv.Doc.Columns {
			for _, w := range contentWords(cd.FullName) {
				if qStems[stem(w)] {
					score += 0.5
				}
			}
			for _, meaning := range cd.ValueMap {
				for _, w := range contentWords(meaning) {
					if qStems[stem(w)] {
						score += 0.4
					}
				}
			}
			if cd.Range != "" {
				for _, w := range contentWords(cd.Range) {
					if qStems[stem(w)] {
						score += 0.2
					}
				}
			}
		}
	}
	return score
}

// --- Stage 4: few-shot selection (paper §III-C) ---

// Shot is one training exemplar placed in the generation prompt.
type Shot struct {
	// Question is the exemplar's natural-language question.
	Question string
	// Evidence is the exemplar's gold evidence string.
	Evidence string
	// Summarized marks exemplars passed through the deepseek variant's
	// second summarization pass.
	Summarized bool
}

// SelectFewShots picks the most similar training question overall, then
// fills up with the most similar questions from the same database, using
// embedding cosine similarity as in the paper (all-mpnet-base-v2 there,
// the deterministic embedder here).
func (p *Pipeline) SelectFewShots(question, dbName string) []Shot {
	k := p.cfg.FewShot
	if k <= 0 {
		k = 5
	}
	if len(p.corpus.Train) == 0 {
		return nil
	}
	qv := p.embedder.Embed(question)
	bestIdx, bestSim := -1, -2.0
	for i := range p.corpus.Train {
		if sim := cosine(qv, p.trainVecs[i]); sim > bestSim {
			bestSim = sim
			bestIdx = i
		}
	}
	chosen := []int{bestIdx}
	used := map[int]bool{bestIdx: true}

	sameDB := p.trainByDB[dbName]
	type cand struct {
		idx int
		sim float64
	}
	var cands []cand
	for _, i := range sameDB {
		if !used[i] {
			cands = append(cands, cand{i, cosine(qv, p.trainVecs[i])})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].sim != cands[b].sim {
			return cands[a].sim > cands[b].sim
		}
		return cands[a].idx < cands[b].idx
	})
	for _, c := range cands {
		if len(chosen) >= k {
			break
		}
		chosen = append(chosen, c.idx)
		used[c.idx] = true
	}
	shots := make([]Shot, 0, len(chosen))
	for _, i := range chosen {
		ex := p.corpus.Train[i]
		shots = append(shots, Shot{Question: ex.Question, Evidence: ex.CleanEvidence})
	}
	return shots
}

func cosine(a, b [256]float32) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// summarizeShots is the deepseek variant's second summarization: exemplars
// are reduced to their evidence lines (question text trimmed) to fit the
// 8,192-token window.
func summarizeShots(shots []Shot) []Shot {
	out := make([]Shot, len(shots))
	for i, s := range shots {
		q := s.Question
		words := strings.Fields(q)
		if len(words) > 8 {
			q = strings.Join(words[:8], " ") + " ..."
		}
		out[i] = Shot{Question: q, Evidence: s.Evidence, Summarized: true}
	}
	return out
}

// ShotPool converts dataset examples into shots directly, bypassing
// similarity selection; used by ablation benchmarks.
func ShotPool(examples []dataset.Example) []Shot {
	out := make([]Shot, len(examples))
	for i, e := range examples {
		out[i] = Shot{Question: e.Question, Evidence: e.CleanEvidence}
	}
	return out
}
