package seed

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/evidence"
	"repro/internal/llm"
)

// TestDAGMatchesSequentialGoldenBIRDDev is the refactor's golden test: for
// the full BIRD dev slice used by the experiment drivers, the stage-graph
// path must produce byte-identical evidence to the pre-refactor sequential
// call chain — for both variants, cold and memo-warm. CI runs this under
// -race, which also exercises the DAG's intra-request stage concurrency on
// every question.
func TestDAGMatchesSequentialGoldenBIRDDev(t *testing.T) {
	if testing.Short() {
		t.Skip("full BIRD dev golden sweep; skipped in -short (CI runs it in its own race lane)")
	}
	for _, mk := range []struct {
		name string
		p    func(t *testing.T) *Pipeline
	}{
		{"gpt", gptPipeline},
		{"deepseek", deepseekPipeline},
	} {
		t.Run(mk.name, func(t *testing.T) {
			p := mk.p(t)
			c := testCorpus(t)
			warm := make(map[string]string, len(c.Dev))
			for _, ex := range c.Dev {
				seq, err := p.GenerateEvidenceSequential(ex.DB, ex.Question)
				if err != nil {
					t.Fatalf("%s sequential: %v", ex.ID, err)
				}
				dag, tr, err := p.GenerateEvidenceTraced(context.Background(), ex.DB, ex.Question)
				if err != nil {
					t.Fatalf("%s dag: %v", ex.ID, err)
				}
				if dag != seq {
					t.Fatalf("%s: DAG evidence diverges from sequential\n dag: %q\n seq: %q\n trace: %+v",
						ex.ID, dag, seq, tr.Stages)
				}
				warm[ex.ID] = dag
			}
			// Second pass: the stage memos are warm now (keywords, schema
			// summaries and shots all hit), and the bytes must not move.
			for _, ex := range c.Dev {
				dag, tr, err := p.GenerateEvidenceTraced(context.Background(), ex.DB, ex.Question)
				if err != nil {
					t.Fatalf("%s warm dag: %v", ex.ID, err)
				}
				if dag != warm[ex.ID] {
					t.Fatalf("%s: memo-warm DAG evidence diverges\n warm: %q\n cold: %q", ex.ID, dag, warm[ex.ID])
				}
				if tr.CacheHits() == 0 {
					t.Errorf("%s: warm run hit no stage memo: %+v", ex.ID, tr.Stages)
				}
			}
		})
	}
}

// TestGenerateEvidenceTraceShape pins the trace contract: all five stages
// present, dependency edges as declared, LLM stages carrying token counts,
// and a non-degenerate wall accounting.
func TestGenerateEvidenceTraceShape(t *testing.T) {
	p := deepseekPipeline(t)
	q := "How many clients who opened their accounts in the Jesenik branch are women?"
	_, tr, err := p.GenerateEvidenceTraced(context.Background(), "financial", q)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]string, len(tr.Stages))
	for i, st := range tr.Stages {
		order[i] = st.Stage
	}
	want := []string{StageKeywords, StageSamples, StageSchema, StageShots, StageGenerate}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("stage order = %v, want %v", order, want)
	}
	if tr.Graph != "seed/seed_deepseek" {
		t.Errorf("graph name = %q", tr.Graph)
	}
	for _, name := range []string{StageKeywords, StageSchema, StageGenerate} {
		if st := tr.Stage(name); !st.CacheHit && st.Tokens == 0 {
			t.Errorf("LLM stage %s reports no tokens: %+v", name, st)
		}
	}
	for _, name := range []string{StageSamples, StageShots} {
		if got := tr.Stage(name).Tokens; got != 0 {
			t.Errorf("non-LLM stage %s reports %d tokens", name, got)
		}
	}
	gen := tr.Stage(StageGenerate)
	if len(gen.Deps) != 3 {
		t.Errorf("generate deps = %v, want samples+schema+shots", gen.Deps)
	}
	if tr.WallMicros <= 0 || tr.SerialMicros <= 0 {
		t.Errorf("degenerate wall accounting: wall=%d serial=%d", tr.WallMicros, tr.SerialMicros)
	}
	if tr.Tokens() <= 0 {
		t.Errorf("trace total tokens = %d", tr.Tokens())
	}
}

// TestPartialWarmSkipsKeywordStage pins the cross-database partial hit:
// the same question text against a different database must serve
// extract_keywords from the memo (its key is the question alone) while
// the db-keyed stages regenerate.
func TestPartialWarmSkipsKeywordStage(t *testing.T) {
	p := gptPipeline(t)
	q := "How many clients who opened their accounts in the Jesenik branch are women?"
	if _, _, err := p.GenerateEvidenceTraced(context.Background(), "financial", q); err != nil {
		t.Fatal(err)
	}
	_, tr, err := p.GenerateEvidenceTraced(context.Background(), "california_schools", q)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Stage(StageKeywords).CacheHit {
		t.Errorf("extract_keywords should hit across databases: %+v", tr.Stages)
	}
	for _, name := range []string{StageSchema, StageShots} {
		if tr.Stage(name).CacheHit {
			t.Errorf("db-keyed stage %s must not hit across databases", name)
		}
	}
}

// TestConcurrentGenerateEvidenceOnePipeline is the satellite -race test:
// many concurrent GenerateEvidence callers on ONE pipeline, each of which
// additionally runs two-plus stages in flight internally via the DAG. The
// assertions are determinism of the results; the data-race assertions are
// the -race build this runs under in CI.
func TestConcurrentGenerateEvidenceOnePipeline(t *testing.T) {
	p := deepseekPipeline(t)
	c := testCorpus(t)
	questions := c.Dev
	if len(questions) > 24 {
		questions = questions[:24]
	}
	// Reference results, generated serially.
	want := make([]string, len(questions))
	for i, ex := range questions {
		ev, err := p.GenerateEvidence(ex.DB, ex.Question)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ev
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range questions {
				ex := questions[(i+w)%len(questions)]
				ev, err := p.GenerateEvidence(ex.DB, ex.Question)
				if err != nil {
					t.Errorf("worker %d %s: %v", w, ex.ID, err)
					return
				}
				if ev != want[(i+w)%len(questions)] {
					t.Errorf("worker %d %s: concurrent result diverges", w, ex.ID)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestTracedErrorCarriesPartialTrace pins the failure contract: an
// unknown database errors without a trace, and a traced call's evidence
// still parses as evidence clauses.
func TestTracedErrorCarriesPartialTrace(t *testing.T) {
	p := gptPipeline(t)
	if _, tr, err := p.GenerateEvidenceTraced(context.Background(), "nonexistent", "q"); err == nil || tr != nil {
		t.Errorf("unknown db: err=%v trace=%v, want error and nil trace", err, tr)
	}
	ev, _, err := p.GenerateEvidenceTraced(context.Background(), "financial",
		"Among the weekly issuance accounts, how many have a loan of under 200000?")
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence.Parse(ev)) == 0 {
		t.Errorf("traced evidence does not parse: %q", ev)
	}
}

// TestDAGOverlapBeatsSequentialWithLatency pins the refactor's perf
// claim: with the simulator charging an API round trip per LLM call (the
// deployed regime), the deepseek variant's DAG must beat the sequential
// chain on cold generations, because summarize_schema's call overlaps the
// extract_keywords -> sample_execution path. The margin is asserted
// loosely (10%) so CPU noise — including -race overhead — cannot flake
// it: the win comes from hidden sleep, not from CPU parallelism.
func TestDAGOverlapBeatsSequentialWithLatency(t *testing.T) {
	client := llm.NewSimulator()
	client.SetLatency(10 * time.Millisecond)
	p := New(ConfigDeepSeek(), client, testCorpus(t))
	questions := testCorpus(t).Dev
	if len(questions) > 8 {
		questions = questions[:8]
	}
	var seqTotal, dagTotal time.Duration
	for _, ex := range questions {
		t0 := time.Now()
		sev, err := p.GenerateEvidenceSequential(ex.DB, ex.Question)
		if err != nil {
			t.Fatal(err)
		}
		seqTotal += time.Since(t0)

		p.ResetStageMemos() // keep the DAG run cold: measure overlap, not memos
		t0 = time.Now()
		dev, _, err := p.GenerateEvidenceTraced(context.Background(), ex.DB, ex.Question)
		if err != nil {
			t.Fatal(err)
		}
		dagTotal += time.Since(t0)
		if dev != sev {
			t.Fatalf("%s: latency run diverged from sequential", ex.ID)
		}
	}
	if dagTotal >= seqTotal*9/10 {
		t.Errorf("cold DAG %v not faster than sequential %v (want < 90%%)", dagTotal, seqTotal)
	}
	t.Logf("cold with latency: sequential %v, DAG %v (%.2fx)", seqTotal, dagTotal, float64(seqTotal)/float64(dagTotal))
}

// TestResetStageMemosForcesColdPath covers the benchmarking hook.
func TestResetStageMemosForcesColdPath(t *testing.T) {
	p := gptPipeline(t)
	q := "Among the weekly issuance accounts, how many have a loan of under 200000?"
	if _, _, err := p.GenerateEvidenceTraced(context.Background(), "financial", q); err != nil {
		t.Fatal(err)
	}
	p.ResetStageMemos()
	_, tr, err := p.GenerateEvidenceTraced(context.Background(), "financial", q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheHits() != 0 {
		t.Errorf("run after ResetStageMemos hit a memo: %+v", tr.Stages)
	}
	for stage, st := range p.StageMemoStats() {
		if st.Entries == 0 {
			t.Errorf("stage %s memo empty after regeneration", stage)
		}
	}
}
