package eval

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/sqlengine"
	"repro/internal/texttosql"
)

var (
	corpusOnce sync.Once
	corpus     *dataset.Corpus
)

func testCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	corpusOnce.Do(func() { corpus = dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7}) })
	return corpus
}

func rows(cols []string, data ...[]sqlengine.Value) *sqlengine.Rows {
	return &sqlengine.Rows{Columns: cols, Data: data}
}

func TestResultsEqual(t *testing.T) {
	a := rows([]string{"x"}, []sqlengine.Value{sqlengine.Int(1)}, []sqlengine.Value{sqlengine.Int(2)})
	b := rows([]string{"x"}, []sqlengine.Value{sqlengine.Int(2)}, []sqlengine.Value{sqlengine.Int(1)})
	if !ResultsEqual(a, b, false) {
		t.Error("unordered comparison should accept permuted rows")
	}
	if ResultsEqual(a, b, true) {
		t.Error("ordered comparison should reject permuted rows")
	}
	c := rows([]string{"x"}, []sqlengine.Value{sqlengine.Int(1)})
	if ResultsEqual(a, c, false) {
		t.Error("different cardinality should not compare equal")
	}
	d := rows([]string{"x"}, []sqlengine.Value{sqlengine.Text("1")}, []sqlengine.Value{sqlengine.Int(2)})
	if ResultsEqual(a, d, false) {
		t.Error("1 and '1' are different values")
	}
}

func TestJudgeScoresGoldAsCorrect(t *testing.T) {
	c := testCorpus(t)
	j := NewJudge()
	for i := 0; i < len(c.Dev); i += 9 {
		e := c.Dev[i]
		db := c.DBs[e.DB]
		o := j.Score(db, e, e.GoldSQL)
		if !o.Correct {
			t.Fatalf("gold SQL must score correct for %s", e.ID)
		}
		if o.R < 0.999 || o.R > 1.001 {
			t.Errorf("gold-vs-gold efficiency ratio = %v, want 1", o.R)
		}
	}
}

func TestJudgeScoresCorruptAsWrongMostly(t *testing.T) {
	c := testCorpus(t)
	j := NewJudge()
	wrong, n := 0, 0
	for i := 0; i < len(c.Dev); i += 5 {
		e := c.Dev[i]
		o := j.Score(c.DBs[e.DB], e, e.CorruptSQL)
		n++
		if !o.Correct {
			wrong++
		}
	}
	if wrong*100 < n*70 {
		t.Errorf("corrupt SQL scored correct too often: %d/%d wrong", wrong, n)
	}
}

func TestJudgeExecError(t *testing.T) {
	c := testCorpus(t)
	j := NewJudge()
	e := c.Dev[0]
	o := j.Score(c.DBs[e.DB], e, "SELECT FROM nonsense")
	if o.Correct || !o.ExecError {
		t.Errorf("unparsable SQL should be an exec error: %+v", o)
	}
}

// goldGen always emits the gold query: the EX ceiling.
type goldGen struct{}

func (goldGen) Name() string                              { return "gold" }
func (goldGen) Generate(t texttosql.Task) (string, error) { return t.Example.GoldSQL, nil }

// corruptGen always emits the corrupt variant: the EX floor.
type corruptGen struct{}

func (corruptGen) Name() string                              { return "corrupt" }
func (corruptGen) Generate(t texttosql.Task) (string, error) { return t.Example.CorruptSQL, nil }

func TestRunnerCeilingAndFloor(t *testing.T) {
	c := testCorpus(t)
	r := NewRunner(c)
	sample := c.Dev[:80]
	top := r.Evaluate(goldGen{}, sample, NoEvidence)
	if top.EX != 100 {
		t.Errorf("gold generator EX = %v, want 100", top.EX)
	}
	if top.VES < 99.9 || top.VES > 100.1 {
		t.Errorf("gold generator VES = %v, want 100", top.VES)
	}
	bottom := r.Evaluate(corruptGen{}, sample, NoEvidence)
	if bottom.EX > 30 {
		t.Errorf("corrupt generator EX = %v, should be low", bottom.EX)
	}
}

func TestRunnerEvidenceConditionsChangeOutcomes(t *testing.T) {
	c := testCorpus(t)
	r := NewRunner(c)
	gen := texttosql.NewDAILSQL(llm.NewSimulator())
	sample := c.Dev[:150]
	none := r.Evaluate(gen, sample, NoEvidence)
	clean := r.Evaluate(gen, sample, CleanEvidenceOf)
	if clean.EX <= none.EX {
		t.Errorf("clean evidence must beat no evidence: %v vs %v", clean.EX, none.EX)
	}
}

func TestRunnerDeterministic(t *testing.T) {
	c := testCorpus(t)
	gen := texttosql.NewCodeS(llm.NewSimulator(), 15)
	sample := c.Dev[:60]
	a := NewRunner(c).Evaluate(gen, sample, ProvidedEvidence)
	b := NewRunner(c).Evaluate(gen, sample, ProvidedEvidence)
	if a.EX != b.EX || a.VES != b.VES {
		t.Errorf("evaluation not deterministic: %v vs %v", a, b)
	}
}

func TestFromMap(t *testing.T) {
	f := FromMap(map[string]string{"x-1": "ev"})
	if f(dataset.Example{ID: "x-1"}) != "ev" || f(dataset.Example{ID: "y"}) != "" {
		t.Error("FromMap lookup wrong")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{N: 10, Correct: 5, EX: 50, VES: 48.5}
	if s := m.String(); s == "" {
		t.Error("empty metrics string")
	}
}
