package eval

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sqlengine"
	"repro/internal/texttosql"
)

// goldEcho is the ideal generator: it returns the gold SQL verbatim. It
// isolates the evaluation pipeline itself — parse, plan, execute, compare —
// which is exactly the hot path the planner targets.
type goldEcho struct{}

func (goldEcho) Name() string                              { return "gold-echo" }
func (goldEcho) Generate(t texttosql.Task) (string, error) { return t.Example.GoldSQL, nil }

// BenchmarkEvaluate measures a full Evaluate pass over the BIRD dev split,
// planner on versus planner off. Metrics must be identical between the two
// (the planner's cost model is logical); only wall-clock may differ.
func BenchmarkEvaluate(b *testing.B) {
	run := func(b *testing.B, planner bool) {
		corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})
		for _, db := range corpus.DBs {
			db.Engine.SetPlanner(planner)
		}
		runner := NewRunner(corpus)
		var first Metrics
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := runner.Evaluate(goldEcho{}, corpus.Dev, NoEvidence)
			if i == 0 {
				first = m
			} else if m != first {
				b.Fatalf("metrics drifted across runs: %v vs %v", m, first)
			}
		}
	}
	b.Run("planner-off", func(b *testing.B) { run(b, false) })
	b.Run("planner-on", func(b *testing.B) { run(b, true) })
}

// TestEvaluateMetricsPlannerInvariant is the experiment-level half of the
// planner's stability contract: a full Evaluate pass produces bit-identical
// EX and VES with the planner on and off.
func TestEvaluateMetricsPlannerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus double evaluation; skipped in -short")
	}
	score := func(planner bool) Metrics {
		corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})
		for _, db := range corpus.DBs {
			db.Engine.SetPlanner(planner)
		}
		return NewRunner(corpus).Evaluate(goldEcho{}, corpus.Dev, NoEvidence)
	}
	on, off := score(true), score(false)
	if on != off {
		t.Fatalf("metrics differ with planner on/off:\non:  %+v\noff: %+v", on, off)
	}
}

func benchRows(n, w int) *sqlengine.Rows {
	rows := &sqlengine.Rows{}
	for c := 0; c < w; c++ {
		rows.Columns = append(rows.Columns, fmt.Sprintf("c%d", c))
	}
	for i := 0; i < n; i++ {
		row := make([]sqlengine.Value, w)
		for c := 0; c < w; c++ {
			switch c % 3 {
			case 0:
				row[c] = sqlengine.Int(int64(i * c))
			case 1:
				row[c] = sqlengine.Float(float64(i) / 3)
			default:
				row[c] = sqlengine.Text(fmt.Sprintf("value-%d-%d", i, c))
			}
		}
		rows.Data = append(rows.Data, row)
	}
	return rows
}

func BenchmarkResultsEqual(b *testing.B) {
	gold := benchRows(200, 5)
	pred := benchRows(200, 5)
	b.Run("unordered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !ResultsEqual(gold, pred, false) {
				b.Fatal("expected equal")
			}
		}
	})
	b.Run("ordered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !ResultsEqual(gold, pred, true) {
				b.Fatal("expected equal")
			}
		}
	})
}
