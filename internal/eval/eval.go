// Package eval implements the paper's two metrics — execution accuracy
// (EX) and the valid efficiency score (VES) — plus a concurrent evaluation
// runner that measures a text-to-SQL generator over a corpus split under a
// configurable evidence condition (§IV-B).
//
// EX compares execution results rather than SQL text, so semantically
// equivalent queries score as correct. VES extends EX by weighting each
// correct query with R = sqrt(cost_gold / cost_predicted); the engine's
// deterministic rows-touched cost stands in for wall-clock time.
package eval

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/schema"
	"repro/internal/sqlengine"
	"repro/internal/texttosql"
)

// ResultsEqual compares two result sets. When ordered is true row order
// matters (the gold query has ORDER BY); otherwise rows compare as
// multisets, the BIRD convention.
func ResultsEqual(gold, pred *sqlengine.Rows, ordered bool) bool {
	if len(gold.Data) != len(pred.Data) {
		return false
	}
	if len(gold.Data) > 0 && len(gold.Data[0]) != len(pred.Data[0]) {
		return false
	}
	gk := rowKeys(gold)
	pk := rowKeys(pred)
	if !ordered {
		sort.Strings(gk)
		sort.Strings(pk)
	}
	for i := range gk {
		if gk[i] != pk[i] {
			return false
		}
	}
	return true
}

func rowKeys(rows *sqlengine.Rows) []string {
	out := make([]string, len(rows.Data))
	var buf []byte
	for i, r := range rows.Data {
		buf = buf[:0]
		for _, v := range r {
			buf = v.AppendKey(buf)
			buf = append(buf, 0)
		}
		out[i] = string(buf)
	}
	return out
}

// Outcome is the evaluation of one predicted query.
type Outcome struct {
	Correct bool
	// R is the efficiency ratio sqrt(goldCost/predCost); zero when the
	// prediction is incorrect or fails to execute.
	R float64
	// ExecError records a prediction that failed to parse or execute.
	ExecError bool
}

// Judge evaluates one prediction against an example's gold query.
type Judge struct {
	mu   sync.Mutex
	gold map[string]*goldEntry
}

type goldEntry struct {
	rows    *sqlengine.Rows
	cost    int64
	ordered bool
	err     error
}

// NewJudge returns a Judge with an empty gold-result cache.
func NewJudge() *Judge {
	return &Judge{gold: make(map[string]*goldEntry)}
}

// goldFor executes (and caches) the example's gold query.
func (j *Judge) goldFor(db *schema.DB, e dataset.Example) *goldEntry {
	j.mu.Lock()
	entry, ok := j.gold[e.ID]
	j.mu.Unlock()
	if ok {
		return entry
	}
	entry = &goldEntry{
		ordered: strings.Contains(strings.ToUpper(e.GoldSQL), "ORDER BY"),
	}
	// Engine.Exec rides the database's prepared-plan cache: the gold query
	// is parsed and planned once, then replayed for every prediction and
	// evidence condition that scores against it.
	res, err := db.Engine.Exec(e.GoldSQL)
	if err != nil {
		entry.err = err
	} else {
		entry.rows = res.Rows
		entry.cost = res.Cost
		if entry.cost < 1 {
			entry.cost = 1
		}
	}
	j.mu.Lock()
	j.gold[e.ID] = entry
	j.mu.Unlock()
	return entry
}

// Score evaluates a predicted SQL string for an example.
func (j *Judge) Score(db *schema.DB, e dataset.Example, predSQL string) Outcome {
	gold := j.goldFor(db, e)
	if gold.err != nil {
		// A broken gold query is a corpus bug; treat the pair as wrong
		// rather than crashing an entire run.
		return Outcome{}
	}
	res, err := db.Engine.Exec(predSQL)
	if err != nil || res.Rows == nil {
		return Outcome{ExecError: true}
	}
	return j.ScoreRows(db, e, res)
}

// ScoreRows evaluates an already-executed prediction result for an
// example. Callers that execute the prediction themselves (the serving
// path, which needs the rows for the response anyway) use this to judge
// without paying a second execution; the gold side still rides the
// per-example cache.
func (j *Judge) ScoreRows(db *schema.DB, e dataset.Example, res *sqlengine.Result) Outcome {
	gold := j.goldFor(db, e)
	if gold.err != nil {
		// A broken gold query is a corpus bug; treat the pair as wrong
		// rather than crashing an entire run.
		return Outcome{}
	}
	if res == nil || res.Rows == nil {
		return Outcome{ExecError: true}
	}
	if !ResultsEqual(gold.rows, res.Rows, gold.ordered) {
		return Outcome{}
	}
	predCost := res.Cost
	if predCost < 1 {
		predCost = 1
	}
	return Outcome{Correct: true, R: math.Sqrt(float64(gold.cost) / float64(predCost))}
}

// Metrics aggregates outcomes over a split.
type Metrics struct {
	// N is the number of evaluated examples.
	N int
	// Correct is the number of execution-accurate predictions.
	Correct int
	// EX is execution accuracy in percent.
	EX float64
	// VES is the valid efficiency score in percent.
	VES float64
	// ExecErrors counts predictions that failed to parse or execute.
	ExecErrors int
	// GenErrors counts generator failures (no SQL produced).
	GenErrors int
}

func (m Metrics) String() string {
	return fmt.Sprintf("EX=%.2f%% VES=%.2f%% (n=%d, execErr=%d, genErr=%d)",
		m.EX, m.VES, m.N, m.ExecErrors, m.GenErrors)
}

// EvidenceFunc supplies the evidence for one example under the current
// experimental condition: none, BIRD-provided, SEED-generated, revised...
type EvidenceFunc func(e dataset.Example) string

// NoEvidence is the w/o-evidence condition.
func NoEvidence(dataset.Example) string { return "" }

// ProvidedEvidence is the w/-evidence condition: whatever the corpus
// shipped with the example (possibly defective on dev).
func ProvidedEvidence(e dataset.Example) string { return e.Evidence }

// CleanEvidenceOf is the corrected-evidence condition used by the
// Table II experiment.
func CleanEvidenceOf(e dataset.Example) string { return e.CleanEvidence }

// FromMap serves precomputed evidence (SEED output) by example ID.
func FromMap(m map[string]string) EvidenceFunc {
	return func(e dataset.Example) string { return m[e.ID] }
}

// Runner evaluates generators over a corpus concurrently.
type Runner struct {
	Corpus *dataset.Corpus
	Judge  *Judge
	// Workers caps evaluation concurrency; 0 means GOMAXPROCS.
	Workers int
}

// NewRunner builds a runner with a fresh judge.
func NewRunner(corpus *dataset.Corpus) *Runner {
	return &Runner{Corpus: corpus, Judge: NewJudge()}
}

// Evaluate runs the generator over the examples under the evidence
// condition and aggregates metrics.
func (r *Runner) Evaluate(gen texttosql.Generator, examples []dataset.Example, evidence EvidenceFunc) Metrics {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outcomes := make([]Outcome, len(examples))
	genErrs := make([]bool, len(examples))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range examples {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			e := examples[i]
			db, ok := r.Corpus.DB(e.DB)
			if !ok {
				genErrs[i] = true
				return
			}
			sql, err := gen.Generate(texttosql.Task{Example: e, DB: db, Evidence: evidence(e)})
			if err != nil {
				genErrs[i] = true
				return
			}
			outcomes[i] = r.Judge.Score(db, e, sql)
		}(i)
	}
	wg.Wait()

	var m Metrics
	m.N = len(examples)
	var ves float64
	for i, o := range outcomes {
		if genErrs[i] {
			m.GenErrors++
			continue
		}
		if o.ExecError {
			m.ExecErrors++
		}
		if o.Correct {
			m.Correct++
			ves += o.R
		}
	}
	if m.N > 0 {
		m.EX = 100 * float64(m.Correct) / float64(m.N)
		m.VES = 100 * ves / float64(m.N)
	}
	return m
}
