package schema

import (
	"strings"
	"testing"

	"repro/internal/sqlengine"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	eng := sqlengine.NewDatabase("bank")
	eng.MustExec(`CREATE TABLE account (
		account_id INTEGER PRIMARY KEY,
		frequency TEXT,
		district_id INTEGER,
		FOREIGN KEY (district_id) REFERENCES district(district_id)
	)`)
	eng.MustExec(`CREATE TABLE district (district_id INTEGER PRIMARY KEY, A2 TEXT)`)
	db := NewDB(eng)
	db.SetDoc(&TableDoc{
		Table:       "account",
		Description: "bank accounts",
		Columns: []ColumnDoc{
			{Column: "account_id", FullName: "account id", Description: "unique id"},
			{Column: "frequency", FullName: "frequency", Description: "issuance frequency",
				ValueMap: map[string]string{
					"POPLATEK TYDNE":   "weekly issuance",
					"POPLATEK MESICNE": "monthly issuance",
				}},
		},
	})
	return db
}

func TestDDLContainsTablesAndFKs(t *testing.T) {
	db := testDB(t)
	ddl := db.DDL()
	for _, want := range []string{"CREATE TABLE account", "CREATE TABLE district", "FOREIGN KEY (district_id) REFERENCES district(district_id)", "PRIMARY KEY"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
	// Rendered DDL must re-parse.
	for _, stmt := range strings.Split(strings.TrimSpace(ddl), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if _, err := sqlengine.Parse(stmt); err != nil {
			t.Errorf("DDL does not re-parse: %v\n%s", err, stmt)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := testDB(t)
	td, ok := db.Doc("account")
	if !ok {
		t.Fatal("doc missing")
	}
	csv := td.CSV()
	parsed, err := ParseTableDocCSV("account", csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Columns) != len(td.Columns) {
		t.Fatalf("round trip lost columns: %d vs %d", len(parsed.Columns), len(td.Columns))
	}
	freq, ok := parsed.ColumnDoc("frequency")
	if !ok {
		t.Fatal("frequency column lost")
	}
	if freq.ValueMap["POPLATEK TYDNE"] != "weekly issuance" {
		t.Errorf("value map lost in round trip: %v", freq.ValueMap)
	}
}

func TestValueDescriptionRendersRangeAndCodes(t *testing.T) {
	cd := ColumnDoc{
		Column:   "hct",
		ValueMap: map[string]string{"H": "high"},
		Range:    "Normal range: 29 < N < 52",
	}
	vd := cd.ValueDescription()
	if !strings.Contains(vd, "'H' stands for high") || !strings.Contains(vd, "Normal range") {
		t.Errorf("value description incomplete: %q", vd)
	}
}

func TestPromptText(t *testing.T) {
	db := testDB(t)
	withDocs := db.PromptText(true)
	withoutDocs := db.PromptText(false)
	if !strings.Contains(withDocs, "weekly issuance") {
		t.Error("prompt with docs must include value descriptions")
	}
	if strings.Contains(withoutDocs, "weekly issuance") {
		t.Error("prompt without docs must not include value descriptions")
	}
	if !strings.Contains(withoutDocs, "CREATE TABLE account") {
		t.Error("prompt must include DDL")
	}
}

func TestForeignKeyOf(t *testing.T) {
	db := testDB(t)
	fk, ok := db.ForeignKeyOf("account", "district")
	if !ok || fk.Column != "district_id" || fk.ParentColumn != "district_id" {
		t.Errorf("ForeignKeyOf = %+v, %v", fk, ok)
	}
	if _, ok := db.ForeignKeyOf("district", "account"); ok {
		t.Error("reverse FK should not exist")
	}
	if _, ok := db.ForeignKeyOf("nosuch", "district"); ok {
		t.Error("unknown table should not report an FK")
	}
}

func TestDocLookupCaseInsensitive(t *testing.T) {
	db := testDB(t)
	if _, ok := db.Doc("ACCOUNT"); !ok {
		t.Error("doc lookup should be case-insensitive")
	}
	if _, ok := db.Doc("nosuch"); ok {
		t.Error("unknown table should have no doc")
	}
}

func TestParseTableDocCSVMalformed(t *testing.T) {
	if _, err := ParseTableDocCSV("x", "a,\"unterminated\n"); err == nil {
		t.Error("malformed CSV should error")
	}
}

func TestDependencyOrderParentsFirst(t *testing.T) {
	eng := sqlengine.NewDatabase("deps")
	// Declared child-before-parent on purpose: the sort must fix it.
	eng.MustExec(`CREATE TABLE loan (loan_id INTEGER PRIMARY KEY, account_id INTEGER,
		FOREIGN KEY (account_id) REFERENCES account(account_id))`)
	eng.MustExec(`CREATE TABLE account (account_id INTEGER PRIMARY KEY, district_id INTEGER,
		FOREIGN KEY (district_id) REFERENCES district(district_id))`)
	eng.MustExec(`CREATE TABLE district (district_id INTEGER PRIMARY KEY)`)
	eng.MustExec(`CREATE TABLE employee (emp_id INTEGER PRIMARY KEY, manager_id INTEGER,
		FOREIGN KEY (manager_id) REFERENCES employee(emp_id))`)

	order, err := DependencyOrder(eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("got %d tables, want 4", len(order))
	}
	pos := make(map[string]int)
	for i, tab := range order {
		pos[strings.ToLower(tab.Name)] = i
	}
	if pos["district"] > pos["account"] || pos["account"] > pos["loan"] {
		t.Fatalf("parents must precede children, got order %v", order)
	}
}

func TestDependencyOrderDeterministic(t *testing.T) {
	build := func() *sqlengine.Database {
		eng := sqlengine.NewDatabase("deps")
		eng.MustExec(`CREATE TABLE a (id INTEGER PRIMARY KEY)`)
		eng.MustExec(`CREATE TABLE b (id INTEGER PRIMARY KEY)`)
		eng.MustExec(`CREATE TABLE c (id INTEGER PRIMARY KEY, a_id INTEGER,
			FOREIGN KEY (a_id) REFERENCES a(id))`)
		return eng
	}
	first, err := DependencyOrder(build())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := DependencyOrder(build())
		if err != nil {
			t.Fatal(err)
		}
		for j := range first {
			if first[j].Name != again[j].Name {
				t.Fatalf("run %d: order differs at %d: %s vs %s", i, j, first[j].Name, again[j].Name)
			}
		}
	}
}

func TestDependencyOrderCycleError(t *testing.T) {
	eng := sqlengine.NewDatabase("cyclic")
	eng.MustExec(`CREATE TABLE x (id INTEGER PRIMARY KEY, y_id INTEGER,
		FOREIGN KEY (y_id) REFERENCES y(id))`)
	eng.MustExec(`CREATE TABLE y (id INTEGER PRIMARY KEY, x_id INTEGER,
		FOREIGN KEY (x_id) REFERENCES x(id))`)
	if _, err := DependencyOrder(eng); err == nil {
		t.Fatal("cycle between x and y must be an error")
	}
}
