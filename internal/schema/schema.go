// Package schema models a database together with its BIRD-style
// description files: per-table CSVs documenting column meanings, value
// codes and domain ranges. SEED's evidence generation (paper §III) reads
// exactly three information sources — the schema, the description files and
// sampled values — and this package is the first two.
package schema

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlengine"
)

// ColumnDoc is the description-file entry for one column, mirroring BIRD's
// database_description CSVs (original_column_name, column_description,
// value_description).
type ColumnDoc struct {
	// Column is the schema column name this entry documents.
	Column string
	// FullName is the expanded natural-language name, e.g. "free meal
	// count" for FreeMealCount.
	FullName string
	// Description explains the column's meaning.
	Description string
	// ValueMap maps stored codes to their meanings, e.g.
	// "POPLATEK TYDNE" -> "weekly issuance". Rendered into the
	// value_description field.
	ValueMap map[string]string
	// Range documents a domain range, e.g. "Normal range: 29 < N < 52".
	Range string
}

// ValueDescription renders the value-description cell: the code/meaning
// pairs plus the range note, matching the free-text style of BIRD files.
func (cd *ColumnDoc) ValueDescription() string {
	var parts []string
	codes := make([]string, 0, len(cd.ValueMap))
	for c := range cd.ValueMap {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("'%s' stands for %s", c, cd.ValueMap[c]))
	}
	if cd.Range != "" {
		parts = append(parts, cd.Range)
	}
	return strings.Join(parts, "; ")
}

// TableDoc is the description file for one table.
type TableDoc struct {
	Table       string
	Description string
	Columns     []ColumnDoc
}

// ColumnDoc returns the entry for the named column, if present.
func (td *TableDoc) ColumnDoc(column string) (*ColumnDoc, bool) {
	for i := range td.Columns {
		if strings.EqualFold(td.Columns[i].Column, column) {
			return &td.Columns[i], true
		}
	}
	return nil, false
}

// CSV renders the table description as a BIRD-style CSV file.
func (td *TableDoc) CSV() string {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	_ = w.Write([]string{"original_column_name", "column_name", "column_description", "value_description"})
	for _, c := range td.Columns {
		_ = w.Write([]string{c.Column, c.FullName, c.Description, c.ValueDescription()})
	}
	w.Flush()
	return buf.String()
}

// ParseTableDocCSV parses a CSV produced by TableDoc.CSV (or an equivalent
// hand-written file) back into a TableDoc for the named table.
func ParseTableDocCSV(table, data string) (*TableDoc, error) {
	r := csv.NewReader(strings.NewReader(data))
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("schema: parsing description CSV for %s: %w", table, err)
	}
	td := &TableDoc{Table: table}
	for i, rec := range records {
		if i == 0 || len(rec) < 4 {
			continue // header
		}
		doc := ColumnDoc{Column: rec[0], FullName: rec[1], Description: rec[2]}
		doc.ValueMap = parseValueDescription(rec[3], &doc.Range)
		td.Columns = append(td.Columns, doc)
	}
	return td, nil
}

func parseValueDescription(s string, rangeOut *string) map[string]string {
	var vm map[string]string
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.Contains(part, " stands for ") && strings.HasPrefix(part, "'") {
			rest := part[1:]
			q := strings.Index(rest, "'")
			if q < 0 {
				continue
			}
			code := rest[:q]
			meaning := strings.TrimPrefix(rest[q+1:], " stands for ")
			if vm == nil {
				vm = make(map[string]string)
			}
			vm[code] = meaning
			continue
		}
		if *rangeOut == "" {
			*rangeOut = part
		}
	}
	return vm
}

// DB bundles an executable database with its documentation. Descriptions
// may be nil for Spider-style corpora that ship no description files.
type DB struct {
	Name   string
	Engine *sqlengine.Database
	// Docs maps lower-cased table names to their description files.
	Docs map[string]*TableDoc
}

// NewDB wraps an engine database with empty documentation.
func NewDB(engine *sqlengine.Database) *DB {
	return &DB{Name: engine.Name, Engine: engine, Docs: make(map[string]*TableDoc)}
}

// Doc returns the description file for a table, if any.
func (d *DB) Doc(table string) (*TableDoc, bool) {
	td, ok := d.Docs[strings.ToLower(table)]
	return td, ok
}

// SetDoc installs a table's description file.
func (d *DB) SetDoc(td *TableDoc) {
	d.Docs[strings.ToLower(td.Table)] = td
}

// HasDescriptions reports whether any table carries a description file.
func (d *DB) HasDescriptions() bool { return len(d.Docs) > 0 }

// DDL serialises the full schema as CREATE TABLE statements — the
// representation SEED and the baselines place in prompts.
func (d *DB) DDL() string {
	var b strings.Builder
	for _, t := range d.Engine.Tables() {
		b.WriteString(TableDDL(t))
		b.WriteString("\n")
	}
	return b.String()
}

// TableDDL renders one table's CREATE TABLE statement, including foreign
// keys (the join hints SEED's deepseek variant echoes into evidence).
func TableDDL(t *sqlengine.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (\n", quote(t.Name))
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %s %s", quote(c.Name), c.Type)
		if c.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
		if i < len(t.Columns)-1 || len(t.ForeignKeys) > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	for i, fk := range t.ForeignKeys {
		fmt.Fprintf(&b, "  FOREIGN KEY (%s) REFERENCES %s(%s)", quote(fk.Column), quote(fk.ParentTable), quote(fk.ParentColumn))
		if i < len(t.ForeignKeys)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString(");")
	return b.String()
}

// PromptText renders the schema plus description files as the prompt block
// SEED feeds its base model. With sampled values appended by the caller it
// matches the evidence-generation prompt structure of Fig. 3.
func (d *DB) PromptText(includeDocs bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- Database: %s\n", d.Name)
	b.WriteString(d.DDL())
	if includeDocs && d.HasDescriptions() {
		b.WriteString("\n-- Description files:\n")
		for _, t := range d.Engine.Tables() {
			if td, ok := d.Doc(t.Name); ok {
				fmt.Fprintf(&b, "-- %s.csv\n%s", td.Table, td.CSV())
			}
		}
	}
	return b.String()
}

// DependencyOrder returns the database's tables topologically sorted by
// their foreign-key dependencies: every parent table precedes all of its
// children, so rows inserted in this order can always resolve their
// references. Self-referencing foreign keys do not constrain the order
// (a table can obviously not precede itself); a genuine cycle between
// distinct tables is an error. Ties are broken by creation order, which
// keeps the result deterministic.
func DependencyOrder(db *sqlengine.Database) ([]*sqlengine.Table, error) {
	tables := db.Tables()
	indegree := make(map[string]int, len(tables))
	children := make(map[string][]string, len(tables))
	byName := make(map[string]*sqlengine.Table, len(tables))
	for _, t := range tables {
		key := strings.ToLower(t.Name)
		byName[key] = t
		if _, ok := indegree[key]; !ok {
			indegree[key] = 0
		}
		for _, fk := range t.ForeignKeys {
			parent := strings.ToLower(fk.ParentTable)
			if parent == key {
				continue // self-reference: no ordering constraint
			}
			if _, ok := db.Table(parent); !ok {
				return nil, fmt.Errorf("schema: table %s references unknown table %s", t.Name, fk.ParentTable)
			}
			children[parent] = append(children[parent], key)
			indegree[key]++
		}
	}
	// Kahn's algorithm over a creation-ordered ready queue.
	var ready []string
	for _, t := range tables {
		key := strings.ToLower(t.Name)
		if indegree[key] == 0 {
			ready = append(ready, key)
		}
	}
	out := make([]*sqlengine.Table, 0, len(tables))
	for len(ready) > 0 {
		key := ready[0]
		ready = ready[1:]
		out = append(out, byName[key])
		for _, child := range children[key] {
			indegree[child]--
			if indegree[child] == 0 {
				ready = append(ready, child)
			}
		}
	}
	if len(out) != len(tables) {
		var cyclic []string
		for _, t := range tables {
			if indegree[strings.ToLower(t.Name)] > 0 {
				cyclic = append(cyclic, t.Name)
			}
		}
		return nil, fmt.Errorf("schema: foreign-key cycle among tables %v", cyclic)
	}
	return out, nil
}

// ForeignKeyOf looks up the foreign key linking childTable to parentTable,
// if declared.
func (d *DB) ForeignKeyOf(childTable, parentTable string) (sqlengine.ForeignKeyDef, bool) {
	t, ok := d.Engine.Table(childTable)
	if !ok {
		return sqlengine.ForeignKeyDef{}, false
	}
	for _, fk := range t.ForeignKeys {
		if strings.EqualFold(fk.ParentTable, parentTable) {
			return fk, true
		}
	}
	return sqlengine.ForeignKeyDef{}, false
}

func quote(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return "`" + s + "`"
		}
	}
	return s
}
