package evserve

import "repro/internal/obs"

// RegisterMetrics publishes the service's counters into reg as gauge
// callbacks evaluated at scrape time, labelled by variant. The existing
// Stats snapshot stays the JSON source; this is the Prometheus view.
func (s *Service) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	labels = append([]obs.Label{obs.L("variant", s.opts.Variant)}, labels...)
	gauge := func(name, help string, get func(Stats) float64) {
		reg.GaugeFunc(name, help, func() float64 { return get(s.Stats()) }, labels...)
	}
	gauge("evserve_cache_hits_total", "Evidence cache hits.", func(st Stats) float64 { return float64(st.Cache.Hits) })
	gauge("evserve_cache_misses_total", "Evidence cache misses.", func(st Stats) float64 { return float64(st.Cache.Misses) })
	gauge("evserve_cache_entries", "Evidence cache entries.", func(st Stats) float64 { return float64(st.Cache.Entries) })
	gauge("evserve_inflight", "Generations running now.", func(st Stats) float64 { return float64(st.Inflight) })
	gauge("evserve_dedups_total", "Requests that shared an in-flight generation.", func(st Stats) float64 { return float64(st.Dedups) })
	gauge("evserve_generations_total", "Pipeline invocations.", func(st Stats) float64 { return float64(st.Generations) })
	gauge("evserve_failures_total", "Failed generations.", func(st Stats) float64 { return float64(st.Failures) })
	gauge("evserve_store_appends_total", "Entries persisted write-through.", func(st Stats) float64 { return float64(st.StoreAppends) })
	gauge("evserve_store_errors_total", "Failed store operations.", func(st Stats) float64 { return float64(st.StoreErrors) })
	gauge("evserve_injected_total", "Entries injected by fleet replication.", func(st Stats) float64 { return float64(st.Injected) })
}
