package evserve

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/pipeline"
)

// Key identifies one evidence request in the cache: the database name, the
// SEED variant that generated the evidence, and a 64-bit FNV-1a hash of the
// whole (db, variant, question) triple. Hashing the question keeps keys
// fixed-size regardless of prompt length; at 64 bits the collision
// probability is negligible for any realistic corpus. Always construct
// through KeyFor — QHash doubles as the shard selector, so a hand-built
// Key will not match one the cache stored.
type Key struct {
	// DB is the target database name.
	DB string
	// Variant names the SEED architecture (e.g. "seed_gpt").
	Variant string
	// QHash is the FNV-1a hash of the (db, variant, question) triple.
	QHash uint64
}

// CacheNamespace maps a SEED variant and corpus name to the service
// variant string used in cache and store keys. Spider corpora get a
// "_spider" suffix: their evidence is generated over model-written
// description files, so it must never be served from (or persisted into)
// BIRD's namespace under the same variant. Every construction site —
// serving, seedgen, the experiment drivers — must use this one rule, or
// a shared store replays entries whose keys never match.
func CacheNamespace(variant, corpus string) string {
	if corpus == "spider" {
		return variant + "_spider"
	}
	return variant
}

// KeyFor builds the cache key for a (db, variant, question) triple. The
// hash covers all three components so it can double as the shard selector
// without re-hashing on the hot lookup path.
func KeyFor(db, variant, question string) Key {
	h := fnv.New64a()
	h.Write([]byte(db))
	h.Write([]byte{0})
	h.Write([]byte(variant))
	h.Write([]byte{0})
	h.Write([]byte(question))
	return Key{DB: db, Variant: variant, QHash: h.Sum64()}
}

// shardFor selects the key's shard: a mask over the precomputed hash, so
// Get and Put cost no hashing.
func (k Key) shardFor(mask uint64) uint64 { return k.QHash & mask }

// Cache is a sharded LRU cache for generated evidence. Each shard has its
// own lock and recency list, so concurrent lookups on different shards never
// contend. The zero value is not usable; construct with NewCache.
type Cache struct {
	shards []*cacheShard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*list.Element
	order    *list.List // front = most recently used
}

// Entry is one cached evidence result: the evidence text plus the
// provenance trace of the generation that produced it. The trace is
// preserved across cache hits so a served response can always say where
// its evidence came from — it describes the original generation, not the
// lookup.
type Entry struct {
	// Evidence is the generated evidence text.
	Evidence string
	// Trace is the stage-graph provenance of the original generation;
	// nil when the wrapped generator is untraced.
	Trace *pipeline.Trace
}

// cacheEntry is the list payload: the key (for eviction bookkeeping) and the
// cached evidence entry.
type cacheEntry struct {
	key Key
	val Entry
}

// NewCache builds a sharded LRU of roughly capacity entries, spread over
// the given shard count. Shards is rounded up to a power of two and each
// shard holds ceil(capacity/shards) entries, so the exact total bound is
// that per-shard capacity times the shard count — slightly above capacity
// when it doesn't divide evenly. Non-positive arguments fall back to
// defaults (capacity 4096, 16 shards).
func NewCache(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			capacity: perShard,
			entries:  make(map[Key]*list.Element),
			order:    list.New(),
		}
	}
	return c
}

// Get returns the cached evidence entry for k, marking it most recently
// used. The second result reports whether the key was present.
func (c *Cache) Get(k Key) (Entry, bool) {
	s := c.shards[k.shardFor(c.mask)]
	s.mu.Lock()
	el, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return Entry{}, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*cacheEntry).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores an evidence entry under k, evicting the shard's least
// recently used entry when the shard is full. Re-putting an existing key
// refreshes both the value and its recency.
func (c *Cache) Put(k Key, v Entry) {
	s := c.shards[k.shardFor(c.mask)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		el.Value.(*cacheEntry).val = v
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
	}
	s.entries[k] = s.order.PushFront(&cacheEntry{key: k, val: v})
}

// Len returns the current number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups served from the cache.
	Hits int64
	// Misses counts lookups that fell through to generation.
	Misses int64
	// Evictions counts entries displaced by the LRU policy.
	Evictions int64
	// Entries is the current cache population.
	Entries int
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
