// Package evserve promotes SEED evidence generation from a test-time memo
// into a serving subsystem: a concurrent evidence-generation service that
// wraps a generation function (normally seed.Pipeline.GenerateEvidence)
// with three layers the paper's batch scripts lack:
//
//  1. A sharded LRU cache keyed by (db, variant, question-hash), so repeat
//     questions — the common case for a deployed text-to-SQL assistant —
//     cost a map lookup instead of a full pipeline run.
//  2. Single-flight deduplication, so concurrent identical requests share
//     one pipeline invocation instead of racing to do the same work.
//  3. A bounded worker pool with a batch API (GenerateAll), replacing
//     unbounded per-split goroutine fan-out with backpressure and
//     context cancellation.
//
// Every layer exports counters (hits, misses, in-flight, dedups, batch
// throughput) through Stats, which the benchrun CLI renders as the
// throughput report.
package evserve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// GenerateFunc produces evidence for one (database, question) pair. It must
// be safe for concurrent use; seed.Pipeline.GenerateEvidence qualifies.
type GenerateFunc func(dbName, question string) (string, error)

// TracedFunc produces evidence plus its stage-graph provenance trace for
// one (database, question) pair. It must be safe for concurrent use;
// seed.Pipeline.GenerateEvidenceTraced qualifies.
type TracedFunc func(ctx context.Context, dbName, question string) (string, *pipeline.Trace, error)

// Store persists cache entries across process restarts. evstore.Store is
// the canonical implementation; the interface lives here so the service
// does not depend on any particular persistence format.
//
// Implementations must be safe for concurrent use: Append is called from
// every generating goroutine.
type Store interface {
	// Load streams every persisted entry; New replays it into the cache
	// before the service accepts requests.
	Load(fn func(Key, Entry)) error
	// Append persists one freshly generated entry write-through.
	Append(Key, Entry) error
	// Flush forces buffered appends down to the OS; Close calls it after
	// the worker pool drains so no accepted write is lost on clean
	// shutdown.
	Flush() error
}

// Options configures a Service.
type Options struct {
	// Variant names the evidence flavour this service produces (e.g.
	// "seed_gpt"). It becomes part of every cache key, so services with
	// distinct variants never serve each other's entries.
	Variant string
	// Generate is the wrapped generation function. Required unless
	// GenerateTraced is set.
	Generate GenerateFunc
	// GenerateTraced, when set, is preferred over Generate: generations
	// then carry per-stage provenance traces, which the cache preserves
	// and Stats aggregates into per-stage cost counters.
	GenerateTraced TracedFunc
	// Workers bounds the worker pool; 0 defaults to GOMAXPROCS.
	Workers int
	// CacheCapacity is the total cache size in entries; 0 defaults to
	// 4096, negative disables caching entirely.
	CacheCapacity int
	// CacheShards is the shard count (rounded up to a power of two);
	// 0 defaults to 16.
	CacheShards int
	// Store, when set, makes the cache durable: New replays the store
	// into the cache (traces included) before serving, every generation
	// is persisted write-through, and Close flushes the store after the
	// worker pool drains. Caching must be enabled (CacheCapacity >= 0)
	// for restore to have somewhere to land; appends happen regardless.
	// The Service does not close the store — its creator owns that.
	Store Store
}

// ErrClosed is returned by Generate and GenerateAll after Close.
var ErrClosed = errors.New("evserve: service closed")

// Request is one unit of batch work for GenerateAll.
type Request struct {
	// DB is the target database name.
	DB string
	// Question is the natural-language question to generate evidence for.
	Question string
}

// Result pairs a Request with its outcome, in submission order.
type Result struct {
	// Request echoes the submitted request.
	Request Request
	// Evidence is the generated (or cached) evidence; empty on error.
	Evidence string
	// Trace is the stage-graph provenance of the evidence — preserved
	// across cache hits, nil when the generator is untraced.
	Trace *pipeline.Trace
	// CacheHit reports the request was answered from the evidence cache.
	CacheHit bool
	// Err is the per-request failure, including ctx.Err() for requests
	// abandoned by cancellation.
	Err error
}

// Evidence is a traced generation outcome, the GenerateTraced return
// value.
type Evidence struct {
	// Text is the evidence string.
	Text string
	// Trace is the stage-graph provenance of the generation that produced
	// Text. On a cache hit it describes the original generation, not the
	// lookup; it is nil when the wrapped generator is untraced.
	Trace *pipeline.Trace
	// CacheHit reports this request was served from the evidence cache.
	CacheHit bool
}

// Service is a concurrent, cached evidence-generation service. Construct
// with New; the zero value is not usable. A Service is safe for concurrent
// use by multiple goroutines.
type Service struct {
	opts   Options
	gen    TracedFunc // normalized generator: Options.GenerateTraced or wrapped Options.Generate
	cache  *Cache
	flight flightGroup
	stages *pipeline.Aggregator

	jobs      chan job
	workersWG sync.WaitGroup
	closeOnce sync.Once
	flushOnce sync.Once
	done      chan struct{}

	inflight    atomic.Int64
	dedups      atomic.Int64
	generations atomic.Int64
	failures    atomic.Int64
	genNanos    atomic.Int64

	restored     int64 // entries replayed from the store at New; written once, read by Stats
	storeAppends atomic.Int64
	storeErrors  atomic.Int64
	injected     atomic.Int64

	batchCalls    atomic.Int64
	batchRequests atomic.Int64
	batchNanos    atomic.Int64
}

// job carries one batch request to a pool worker.
type job struct {
	ctx      context.Context
	db       string
	question string
	out      *Result
	wg       *sync.WaitGroup
}

// New builds and starts a Service; its worker pool runs until Close. It
// panics if neither generation function is set, since a service with
// nothing to wrap is a programming error, not a runtime condition.
func New(opts Options) *Service {
	if opts.Generate == nil && opts.GenerateTraced == nil {
		panic("evserve: Options.Generate or Options.GenerateTraced is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		opts:   opts,
		jobs:   make(chan job),
		done:   make(chan struct{}),
		stages: pipeline.NewAggregator(),
	}
	s.gen = opts.GenerateTraced
	if s.gen == nil {
		plain := opts.Generate
		s.gen = func(ctx context.Context, db, question string) (string, *pipeline.Trace, error) {
			ev, err := plain(db, question)
			return ev, nil, err
		}
	}
	if opts.CacheCapacity >= 0 {
		s.cache = NewCache(opts.CacheCapacity, opts.CacheShards)
	}
	if opts.Store != nil && s.cache != nil {
		// Warm restart: replay the durable store into the cache before the
		// first request, so a restarted service serves byte-identical
		// evidence (traces included) without a single generation.
		// A replay failure is not fatal: the service degrades to a cold
		// cache and the error surfaces through Stats.StoreErrors. Entries
		// of other variants are skipped — stores are shared per corpus, so
		// a multi-variant store would otherwise pollute (and, under a
		// small CacheCapacity, evict) this service's own entries with keys
		// it can never look up.
		if err := opts.Store.Load(func(k Key, e Entry) {
			if k.Variant != opts.Variant {
				return
			}
			s.cache.Put(k, e)
			s.restored++
		}); err != nil {
			s.storeErrors.Add(1)
		}
	}
	s.workersWG.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// worker drains the job channel until Close. The jobs channel is unbuffered
// and never closed: a send only completes when a worker receives it, so
// every job that enters the pool is guaranteed a wg.Done.
func (s *Service) worker() {
	defer s.workersWG.Done()
	for {
		select {
		case <-s.done:
			return
		case j := <-s.jobs:
			if err := j.ctx.Err(); err != nil {
				j.out.Err = err
				j.wg.Done()
				continue
			}
			ev, err := s.GenerateTraced(j.ctx, j.db, j.question)
			j.out.Evidence, j.out.Trace, j.out.CacheHit, j.out.Err = ev.Text, ev.Trace, ev.CacheHit, err
			j.wg.Done()
		}
	}
}

// Generate returns evidence for one question: from the cache when present,
// otherwise by running the wrapped generation function — at most once per
// key across concurrent callers. It does not use the worker pool, so it is
// safe to call from inside another Service's GenerateFunc.
func (s *Service) Generate(ctx context.Context, db, question string) (string, error) {
	ev, err := s.GenerateTraced(ctx, db, question)
	return ev.Text, err
}

// GenerateTraced is Generate plus provenance: the returned Evidence
// carries the stage-graph trace of the generation that produced it (the
// cache preserves traces, so warm hits still explain themselves) and
// whether this particular request was a cache hit.
func (s *Service) GenerateTraced(ctx context.Context, db, question string) (Evidence, error) {
	if err := ctx.Err(); err != nil {
		return Evidence{}, err
	}
	select {
	case <-s.done:
		return Evidence{}, ErrClosed
	default:
	}
	k := KeyFor(db, s.opts.Variant, question)
	_, sp := obs.StartSpan(ctx, "evserve.lookup")
	if s.cache != nil {
		if e, ok := s.cache.Get(k); ok {
			sp.SetAttr("cache_hit", true)
			sp.End()
			return Evidence{Text: e.Evidence, Trace: e.Trace, CacheHit: true}, nil
		}
	}
	sp.SetAttr("cache_hit", false)
	// Generation/append timings escape the closure via these locals: the
	// closure body runs only in the single-flight leader's goroutine (this
	// one, when shared=false), so recording them as spans after do()
	// returns is race-free, and followers — who did none of the work —
	// record no child spans.
	var genStart, appendStart time.Time
	var genDur, appendDur time.Duration
	v, err, shared := s.flight.do(k, func() (Entry, error) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		genStart = time.Now()
		// The generation is shared by every deduped caller, so it must
		// not run under any single caller's context: the leader hanging
		// up would fail followers whose own contexts are alive. Requests
		// already generating run to completion — the contract GenerateAll
		// documents — and callers stop *waiting* via their own ctx.
		ev, trace, err := s.gen(context.Background(), db, question)
		genDur = time.Since(genStart)
		s.genNanos.Add(genDur.Nanoseconds())
		s.generations.Add(1)
		if err != nil {
			s.failures.Add(1)
			// Keep the partial trace: it names the stage that aborted.
			return Entry{Trace: trace}, err
		}
		s.stages.Observe(trace)
		e := Entry{Evidence: ev, Trace: trace}
		if s.cache != nil {
			s.cache.Put(k, e)
		}
		if s.opts.Store != nil {
			// Write-through: the entry is on its way to disk before the
			// caller sees it. Store failures never fail the request —
			// evidence was generated; only durability suffered.
			appendStart = time.Now()
			if serr := s.opts.Store.Append(k, e); serr != nil {
				s.storeErrors.Add(1)
			} else {
				s.storeAppends.Add(1)
			}
			appendDur = time.Since(appendStart)
		}
		return e, nil
	})
	if shared {
		s.dedups.Add(1)
		sp.SetAttr("deduped", true)
	} else if genDur > 0 {
		sp.Child("evserve.generate", genStart, genDur, nil)
		if appendDur > 0 {
			sp.Child("evstore.append", appendStart, appendDur, nil)
		}
	}
	if err != nil {
		sp.Fail(err)
		return Evidence{Trace: v.Trace}, err
	}
	sp.End()
	return Evidence{Text: v.Evidence, Trace: v.Trace}, nil
}

// Inject lands an externally produced entry (typically one replicated
// from a fleet peer's store) directly in the cache, so a follower serves
// its dead peer's shard from memory without a single generation. Entries
// of other variants are skipped — same rule as the startup replay: this
// service could never look their keys up, so caching them would only
// evict its own. Inject does not persist; replication owns durability.
// It reports whether the entry was cached.
func (s *Service) Inject(k Key, e Entry) bool {
	if k.Variant != s.opts.Variant || s.cache == nil {
		return false
	}
	select {
	case <-s.done:
		return false
	default:
	}
	s.cache.Put(k, e)
	s.injected.Add(1)
	return true
}

// GenerateAll runs a batch of requests through the bounded worker pool and
// returns one Result per request, in submission order. Cancelling ctx stops
// submission and fails queued-but-unstarted requests with ctx.Err();
// requests already generating run to completion. The returned error is
// ctx.Err() when the batch was cancelled, ErrClosed when the service was
// closed mid-batch, and nil otherwise — per-request failures are reported
// on the individual Results only.
func (s *Service) GenerateAll(ctx context.Context, reqs []Request) ([]Result, error) {
	start := time.Now()
	results := make([]Result, len(reqs))
	var wg sync.WaitGroup
	var batchErr error
	submitted := 0
submit:
	for i := range reqs {
		results[i].Request = reqs[i]
		wg.Add(1)
		select {
		case s.jobs <- job{ctx: ctx, db: reqs[i].DB, question: reqs[i].Question, out: &results[i], wg: &wg}:
			submitted++
		case <-ctx.Done():
			wg.Done()
			for j := i; j < len(reqs); j++ {
				results[j].Request = reqs[j]
				results[j].Err = ctx.Err()
			}
			batchErr = ctx.Err()
			break submit
		case <-s.done:
			wg.Done()
			for j := i; j < len(reqs); j++ {
				results[j].Request = reqs[j]
				results[j].Err = ErrClosed
			}
			batchErr = ErrClosed
			break submit
		}
	}
	wg.Wait()
	s.batchCalls.Add(1)
	s.batchRequests.Add(int64(submitted))
	s.batchNanos.Add(time.Since(start).Nanoseconds())
	return results, batchErr
}

// Close stops the worker pool, waits for in-flight jobs to drain, and
// then flushes the store (when one is attached) so every write accepted
// before shutdown is durable — flushing before the workers drain would
// race the last generations' appends. It is idempotent. Batches submitted
// concurrently with Close may observe ErrClosed on their remaining
// requests.
func (s *Service) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.workersWG.Wait()
	if s.opts.Store != nil {
		// Every pool worker has exited, so every batch-accepted append has
		// been issued; flushing here pins the "no accepted write lost on
		// clean shutdown" guarantee. (Direct Generate callers racing Close
		// still append safely — the store serializes appends — but only
		// their own Flush policy covers writes issued after this point.)
		// Flushed once: a repeat Close after the store's owner closed it
		// must not report a phantom StoreError.
		s.flushOnce.Do(func() {
			if err := s.opts.Store.Flush(); err != nil {
				s.storeErrors.Add(1)
			}
		})
	}
}

// Stats is a point-in-time snapshot of the service's counters.
type Stats struct {
	// Variant echoes Options.Variant.
	Variant string
	// Workers echoes the resolved pool size.
	Workers int
	// Cache holds the cache counters; zero-valued when caching is off.
	Cache CacheStats
	// Inflight is the number of generations running right now.
	Inflight int64
	// Dedups counts requests that shared another caller's in-flight
	// generation instead of starting their own.
	Dedups int64
	// Generations counts actual pipeline invocations (cache misses that
	// won the single-flight race).
	Generations int64
	// Failures counts generations that returned an error.
	Failures int64
	// GenerationTime is the summed wall time of all generations.
	GenerationTime time.Duration
	// BatchCalls counts GenerateAll invocations.
	BatchCalls int64
	// BatchRequests counts requests actually handed to the pool across
	// all batches; requests failed before submission (cancellation,
	// Close) are excluded so Throughput is not overstated.
	BatchRequests int64
	// BatchTime is the summed wall time of all GenerateAll calls.
	BatchTime time.Duration
	// Restored counts entries replayed from the durable store into the
	// cache at construction; 0 when no store is attached (or it was
	// empty).
	Restored int64
	// StoreAppends counts entries persisted write-through to the store.
	StoreAppends int64
	// StoreErrors counts store operations (replay, append, flush) that
	// failed. Store failures never fail requests; this counter is how
	// they surface.
	StoreErrors int64
	// Injected counts entries landed in the cache via Inject (fleet
	// replication); 0 outside a fleet.
	Injected int64
	// Stages aggregates the per-stage provenance traces of every traced
	// generation: count, memo hits, wall time and token spend per
	// pipeline stage. Empty when the wrapped generator is untraced.
	Stages []pipeline.StageAgg
}

// Throughput returns batch requests served per second of batch wall time,
// or 0 before any batch has run.
func (st Stats) Throughput() float64 {
	if st.BatchTime <= 0 {
		return 0
	}
	return float64(st.BatchRequests) / st.BatchTime.Seconds()
}

// String renders the snapshot as a one-line summary.
func (st Stats) String() string {
	return fmt.Sprintf(
		"%s: %d workers, cache %d/%d/%d hit/miss/evict (%d entries), %d dedup, %d gen (%d failed) in %v, %d reqs in %d batches over %v (%.0f req/s)",
		st.Variant, st.Workers,
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.Entries,
		st.Dedups, st.Generations, st.Failures, st.GenerationTime.Round(time.Microsecond),
		st.BatchRequests, st.BatchCalls, st.BatchTime.Round(time.Microsecond), st.Throughput(),
	)
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Variant:        s.opts.Variant,
		Workers:        s.opts.Workers,
		Inflight:       s.inflight.Load(),
		Dedups:         s.dedups.Load(),
		Generations:    s.generations.Load(),
		Failures:       s.failures.Load(),
		GenerationTime: time.Duration(s.genNanos.Load()),
		BatchCalls:     s.batchCalls.Load(),
		BatchRequests:  s.batchRequests.Load(),
		BatchTime:      time.Duration(s.batchNanos.Load()),
		Restored:       s.restored,
		StoreAppends:   s.storeAppends.Load(),
		StoreErrors:    s.storeErrors.Load(),
		Injected:       s.injected.Load(),
		Stages:         s.stages.Snapshot(),
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	return st
}
