package evserve_test

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/evserve"
)

// ExampleService_Generate shows the request path: the first call runs the
// wrapped generator, repeats are served from the cache.
func ExampleService_Generate() {
	var pipelineRuns atomic.Int64
	svc := evserve.New(evserve.Options{
		Variant: "seed_gpt",
		Generate: func(db, question string) (string, error) {
			pipelineRuns.Add(1)
			return "free rate = FreeMealCount / Enrollment", nil
		},
	})
	defer svc.Close()

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		ev, _ := svc.Generate(ctx, "california_schools", "What is the highest free rate?")
		fmt.Println(ev)
	}
	st := svc.Stats()
	fmt.Printf("pipeline runs: %d, cache hits: %d\n", pipelineRuns.Load(), st.Cache.Hits)
	// Output:
	// free rate = FreeMealCount / Enrollment
	// free rate = FreeMealCount / Enrollment
	// free rate = FreeMealCount / Enrollment
	// pipeline runs: 1, cache hits: 2
}

// ExampleService_GenerateAll shows the batch API: a whole split goes
// through the bounded worker pool and comes back in submission order.
func ExampleService_GenerateAll() {
	svc := evserve.New(evserve.Options{
		Variant: "seed_gpt",
		Workers: 4,
		Generate: func(db, question string) (string, error) {
			return "evidence for: " + question, nil
		},
	})
	defer svc.Close()

	results, err := svc.GenerateAll(context.Background(), []evserve.Request{
		{DB: "financial", Question: "How many accounts are there?"},
		{DB: "financial", Question: "Which district has the most loans?"},
	})
	fmt.Println("batch error:", err)
	for _, r := range results {
		fmt.Println(r.Evidence)
	}
	// Output:
	// batch error: <nil>
	// evidence for: How many accounts are there?
	// evidence for: Which district has the most loans?
}

// ExampleCache shows the sharded LRU on its own: capacity bounds the
// population and the least recently used entry is evicted first.
func ExampleCache() {
	c := evserve.NewCache(2, 1)
	c.Put(evserve.KeyFor("db", "seed_gpt", "q1"), evserve.Entry{Evidence: "ev1"})
	c.Put(evserve.KeyFor("db", "seed_gpt", "q2"), evserve.Entry{Evidence: "ev2"})
	c.Get(evserve.KeyFor("db", "seed_gpt", "q1"))                                 // refresh q1
	c.Put(evserve.KeyFor("db", "seed_gpt", "q3"), evserve.Entry{Evidence: "ev3"}) // evicts q2

	_, q1 := c.Get(evserve.KeyFor("db", "seed_gpt", "q1"))
	_, q2 := c.Get(evserve.KeyFor("db", "seed_gpt", "q2"))
	fmt.Println("q1 cached:", q1)
	fmt.Println("q2 cached:", q2)
	// Output:
	// q1 cached: true
	// q2 cached: false
}
