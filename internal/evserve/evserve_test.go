package evserve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// echoService builds a service whose generator returns "db/question" and
// counts invocations.
func echoService(t *testing.T, opts Options, calls *atomic.Int64) *Service {
	t.Helper()
	opts.Generate = func(db, question string) (string, error) {
		calls.Add(1)
		return db + "/" + question, nil
	}
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

func TestGenerateCachesResult(t *testing.T) {
	var calls atomic.Int64
	s := echoService(t, Options{Variant: "v"}, &calls)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		got, err := s.Generate(ctx, "db1", "q1")
		if err != nil || got != "db1/q1" {
			t.Fatalf("Generate = %q, %v", got, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("generator ran %d times, want 1", n)
	}
	st := s.Stats()
	if st.Cache.Hits != 4 || st.Cache.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 4/1", st.Cache.Hits, st.Cache.Misses)
	}
}

func TestKeySeparatesVariantsAndDBs(t *testing.T) {
	a := KeyFor("db1", "gpt", "q")
	for _, other := range []Key{
		KeyFor("db2", "gpt", "q"),
		KeyFor("db1", "deepseek", "q"),
		KeyFor("db1", "gpt", "q2"),
	} {
		if a == other {
			t.Errorf("keys collide: %+v vs %+v", a, other)
		}
	}
}

// TestSingleFlightDedup launches many concurrent identical requests against
// a slow generator and asserts exactly one pipeline invocation.
func TestSingleFlightDedup(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Options{
		Variant: "v",
		Workers: 4,
		Generate: func(db, question string) (string, error) {
			if calls.Add(1) == 1 {
				close(started)
			}
			<-release
			return "ev", nil
		},
	})
	defer s.Close()

	const n = 32
	var wg sync.WaitGroup
	results := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Generate(context.Background(), "db", "same question")
		}(i)
	}
	<-started
	// All callers are now either blocked in the flight group or yet to
	// arrive; give stragglers a moment, then release the one generation.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("generator ran %d times for identical concurrent requests, want 1", n)
	}
	for i := range results {
		if errs[i] != nil || results[i] != "ev" {
			t.Errorf("caller %d: %q, %v", i, results[i], errs[i])
		}
	}
	if st := s.Stats(); st.Dedups == 0 {
		t.Errorf("expected shared callers to be counted as dedups, got %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2, 1) // one shard, two entries
	k1, k2, k3 := KeyFor("db", "v", "a"), KeyFor("db", "v", "b"), KeyFor("db", "v", "c")
	c.Put(k1, Entry{Evidence: "1"})
	c.Put(k2, Entry{Evidence: "2"})
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 missing before eviction")
	}
	c.Put(k3, Entry{Evidence: "3"}) // evicts k2: k1 was refreshed by the Get above
	if _, ok := c.Get(k2); ok {
		t.Error("k2 should have been evicted as least recently used")
	}
	if _, ok := c.Get(k1); !ok {
		t.Error("k1 should have survived: it was most recently used")
	}
	if _, ok := c.Get(k3); !ok {
		t.Error("k3 should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

func TestServiceEvictionRegenerates(t *testing.T) {
	var calls atomic.Int64
	s := echoService(t, Options{Variant: "v", CacheCapacity: 2, CacheShards: 1}, &calls)
	ctx := context.Background()
	for _, q := range []string{"a", "b", "c", "a"} {
		if _, err := s.Generate(ctx, "db", q); err != nil {
			t.Fatal(err)
		}
	}
	// "a" was evicted when "c" arrived, so the last request regenerates.
	if n := calls.Load(); n != 4 {
		t.Errorf("generator ran %d times, want 4 (eviction forces regeneration)", n)
	}
}

func TestGenerateAllOrderAndValues(t *testing.T) {
	var calls atomic.Int64
	s := echoService(t, Options{Variant: "v", Workers: 3}, &calls)
	reqs := make([]Request, 20)
	for i := range reqs {
		reqs[i] = Request{DB: "db", Question: fmt.Sprintf("q%d", i)}
	}
	results, err := s.GenerateAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want := fmt.Sprintf("db/q%d", i)
		if r.Err != nil || r.Evidence != want {
			t.Errorf("result %d = %q, %v; want %q", i, r.Evidence, r.Err, want)
		}
		if r.Request != reqs[i] {
			t.Errorf("result %d echoes %+v, want %+v", i, r.Request, reqs[i])
		}
	}
	st := s.Stats()
	if st.BatchCalls != 1 || st.BatchRequests != 20 {
		t.Errorf("batch counters = %d calls / %d reqs, want 1/20", st.BatchCalls, st.BatchRequests)
	}
}

func TestGenerateAllErrorsAreLocal(t *testing.T) {
	boom := errors.New("boom")
	s := New(Options{
		Variant: "v",
		Workers: 2,
		Generate: func(db, question string) (string, error) {
			if question == "bad" {
				return "", boom
			}
			return "ok", nil
		},
	})
	defer s.Close()
	results, err := s.GenerateAll(context.Background(), []Request{
		{DB: "db", Question: "good"},
		{DB: "db", Question: "bad"},
	})
	if err != nil {
		t.Fatalf("batch error = %v, want nil (per-request errors only)", err)
	}
	if results[0].Err != nil || results[0].Evidence != "ok" {
		t.Errorf("good request: %+v", results[0])
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("bad request error = %v, want boom", results[1].Err)
	}
	if st := s.Stats(); st.Failures != 1 {
		t.Errorf("failures = %d, want 1", st.Failures)
	}
}

// TestGenerateAllCancellation cancels a batch mid-run: the call must return
// ctx.Err(), abandoned requests must carry ctx.Err(), and the pool must not
// process the whole batch.
func TestGenerateAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	s := New(Options{
		Variant:       "v",
		Workers:       1,
		CacheCapacity: -1, // isolate pool behaviour from caching
		Generate: func(db, question string) (string, error) {
			if calls.Add(1) == 2 {
				cancel() // cancel while the batch is mid-flight
			}
			time.Sleep(time.Millisecond)
			return "ev", nil
		},
	})
	defer s.Close()

	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{DB: "db", Question: fmt.Sprintf("q%d", i)}
	}
	results, err := s.GenerateAll(ctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	cancelled := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no request carries the cancellation error")
	}
	if n := calls.Load(); n >= int64(len(reqs)) {
		t.Errorf("pool processed all %d requests despite cancellation", n)
	}
	if st := s.Stats(); st.BatchRequests >= int64(len(reqs)) {
		t.Errorf("BatchRequests = %d counts never-submitted requests (batch size %d)", st.BatchRequests, len(reqs))
	}
}

func TestGenerateAfterCloseFails(t *testing.T) {
	s := New(Options{Variant: "v", Generate: func(db, q string) (string, error) { return "ev", nil }})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Generate(context.Background(), "db", "q"); !errors.Is(err, ErrClosed) {
		t.Errorf("Generate after Close = %v, want ErrClosed", err)
	}
	if _, err := s.GenerateAll(context.Background(), []Request{{DB: "db", Question: "q"}}); !errors.Is(err, ErrClosed) {
		t.Errorf("GenerateAll after Close = %v, want ErrClosed", err)
	}
}

// TestCloseIdempotentUnderConcurrency pins the shutdown contract the
// serving subsystem relies on: Close must be safe to call any number of
// times from any number of goroutines — a server's shutdown path racing
// experiments.Env.Close over the same service must not panic or deadlock,
// and every Close call must return only after the pool has drained.
func TestCloseIdempotentUnderConcurrency(t *testing.T) {
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	s := New(Options{Variant: "v", Workers: 2, Generate: func(db, q string) (string, error) {
		started.Done()
		<-release
		return "ev", nil
	}})

	// One generation is mid-flight while the closes race.
	genDone := make(chan error, 1)
	go func() {
		_, err := s.Generate(context.Background(), "db", "q")
		genDone <- err
	}()
	started.Wait()
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
	s.Close() // and once more, sequentially
	if err := <-genDone; err != nil {
		t.Errorf("in-flight Generate failed across racing closes: %v", err)
	}
	if _, err := s.Generate(context.Background(), "db", "q2"); !errors.Is(err, ErrClosed) {
		t.Errorf("Generate after concurrent closes = %v, want ErrClosed", err)
	}
}

// TestConcurrentMixedLoad hammers the service from many goroutines with
// overlapping keys; run under -race this is the service's race test.
func TestConcurrentMixedLoad(t *testing.T) {
	var calls atomic.Int64
	s := echoService(t, Options{Variant: "v", Workers: 4, CacheCapacity: 8, CacheShards: 2}, &calls)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("q%d", (g+i)%16)
				want := "db/" + q
				got, err := s.Generate(context.Background(), "db", q)
				if err != nil || got != want {
					t.Errorf("Generate(%q) = %q, %v", q, got, err)
					return
				}
			}
		}(g)
	}
	// A concurrent batch over the same key space.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reqs := make([]Request, 32)
		for i := range reqs {
			reqs[i] = Request{DB: "db", Question: fmt.Sprintf("q%d", i%16)}
		}
		if _, err := s.GenerateAll(context.Background(), reqs); err != nil {
			t.Errorf("GenerateAll: %v", err)
		}
	}()
	wg.Wait()
	_ = s.Stats() // exercise the snapshot path concurrently-ish too
}

// TestWarmLookupsBeatColdGeneration pins the acceptance bar directly: with
// a generator costing ~2ms, warm cache hits must average at least 10x
// faster. The margin is enormous (hits are sub-microsecond), so the test is
// stable even on loaded CI machines.
func TestWarmLookupsBeatColdGeneration(t *testing.T) {
	const genCost = 2 * time.Millisecond
	s := New(Options{
		Variant: "v",
		Generate: func(db, question string) (string, error) {
			time.Sleep(genCost)
			return "ev", nil
		},
	})
	defer s.Close()
	ctx := context.Background()

	coldStart := time.Now()
	if _, err := s.Generate(ctx, "db", "q"); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)

	const warmN = 100
	warmStart := time.Now()
	for i := 0; i < warmN; i++ {
		if _, err := s.Generate(ctx, "db", "q"); err != nil {
			t.Fatal(err)
		}
	}
	warm := time.Since(warmStart) / warmN

	if warm*10 > cold {
		t.Errorf("warm lookup %v not 10x faster than cold generation %v", warm, cold)
	}
}

func TestStatsStringMentionsVariant(t *testing.T) {
	var calls atomic.Int64
	s := echoService(t, Options{Variant: "seed_gpt"}, &calls)
	if _, err := s.Generate(context.Background(), "db", "q"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().String(); got == "" || !contains(got, "seed_gpt") {
		t.Errorf("Stats().String() = %q", got)
	}
	if tp := s.Stats().Throughput(); tp != 0 {
		t.Errorf("throughput before any batch = %v, want 0", tp)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// BenchmarkWorkerScalingLatencyBound measures GenerateAll throughput over a
// generator dominated by simulated latency (as a network-backed LLM would
// be). Unlike CPU-bound generation, latency-bound work overlaps regardless
// of GOMAXPROCS, so throughput must scale near-linearly with pool size.
func BenchmarkWorkerScalingLatencyBound(b *testing.B) {
	const latency = time.Millisecond
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{DB: "db", Question: fmt.Sprintf("q%d", i)}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				svc := New(Options{
					Variant: "bench",
					Workers: workers,
					Generate: func(db, question string) (string, error) {
						time.Sleep(latency)
						return "ev", nil
					},
				})
				if _, err := svc.GenerateAll(context.Background(), reqs); err != nil {
					b.Fatal(err)
				}
				svc.Close()
			}
			b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkCacheGet measures the warm-path cost in isolation: a sharded
// cache hit under no contention.
func BenchmarkCacheGet(b *testing.B) {
	c := NewCache(1024, 16)
	k := KeyFor("db", "v", "question")
	c.Put(k, Entry{Evidence: "evidence"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); !ok {
			b.Fatal("miss")
		}
	}
}

// tracedEcho returns a TracedFunc that fabricates a two-stage trace and
// counts invocations.
func tracedEcho(calls *atomic.Int64) TracedFunc {
	return func(ctx context.Context, db, question string) (string, *pipeline.Trace, error) {
		calls.Add(1)
		return db + "/" + question, &pipeline.Trace{
			Graph: "test",
			Stages: []pipeline.StageTrace{
				{Stage: "extract", WallMicros: 5, Tokens: 11},
				{Stage: "generate", WallMicros: 7, Tokens: 23, Deps: []string{"extract"}},
			},
			WallMicros:   9,
			SerialMicros: 12,
		}, nil
	}
}

// TestGenerateTracedPreservesTraceAcrossCache: the trace returned on a
// cache hit is the original generation's, and CacheHit distinguishes the
// two requests.
func TestGenerateTracedPreservesTraceAcrossCache(t *testing.T) {
	var calls atomic.Int64
	svc := New(Options{Variant: "t", GenerateTraced: tracedEcho(&calls)})
	defer svc.Close()

	ctx := context.Background()
	first, err := svc.GenerateTraced(ctx, "db", "q")
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || first.Text != "db/q" {
		t.Fatalf("first = %+v, want fresh generation", first)
	}
	if first.Trace == nil || len(first.Trace.Stages) != 2 {
		t.Fatalf("first trace = %+v", first.Trace)
	}
	second, err := svc.GenerateTraced(ctx, "db", "q")
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second request should be a cache hit")
	}
	if second.Trace != first.Trace {
		t.Error("cache must preserve the original generation's trace")
	}
	if calls.Load() != 1 {
		t.Errorf("generator ran %d times, want 1", calls.Load())
	}
}

// TestStatsAggregatesStages: per-stage counters accumulate across traced
// generations and flow out through Stats.
func TestStatsAggregatesStages(t *testing.T) {
	var calls atomic.Int64
	svc := New(Options{Variant: "t", GenerateTraced: tracedEcho(&calls)})
	defer svc.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := svc.GenerateTraced(ctx, "db", fmt.Sprintf("q%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if len(st.Stages) != 2 {
		t.Fatalf("Stats.Stages = %+v, want 2 stages", st.Stages)
	}
	if st.Stages[0].Stage != "extract" || st.Stages[0].Count != 3 || st.Stages[0].Tokens != 33 {
		t.Errorf("extract agg = %+v", st.Stages[0])
	}
	if st.Stages[1].Stage != "generate" || st.Stages[1].WallMicros != 21 {
		t.Errorf("generate agg = %+v", st.Stages[1])
	}
}

// TestGenerateAllCarriesTraces: batch results carry each request's trace
// and cache-hit flag.
func TestGenerateAllCarriesTraces(t *testing.T) {
	var calls atomic.Int64
	svc := New(Options{Variant: "t", Workers: 2, GenerateTraced: tracedEcho(&calls)})
	defer svc.Close()
	reqs := []Request{
		{DB: "db", Question: "q1"},
		{DB: "db", Question: "q1"}, // duplicate: cache or single-flight
		{DB: "db", Question: "q2"},
	}
	results, err := svc.GenerateAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Trace == nil {
			t.Errorf("result %d has no trace", i)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("generator ran %d times for 2 distinct questions", calls.Load())
	}
}

// TestUntracedGeneratorStillWorks: services built on the plain
// GenerateFunc keep their exact old behaviour, just with nil traces.
func TestUntracedGeneratorStillWorks(t *testing.T) {
	svc := New(Options{Variant: "t", Generate: func(db, q string) (string, error) {
		return "ev", nil
	}})
	defer svc.Close()
	ev, err := svc.GenerateTraced(context.Background(), "db", "q")
	if err != nil || ev.Text != "ev" || ev.Trace != nil {
		t.Fatalf("untraced = %+v, %v", ev, err)
	}
	if st := svc.Stats(); len(st.Stages) != 0 {
		t.Errorf("untraced service reports stages: %+v", st.Stages)
	}
}

// TestSharedGenerationDetachedFromCallerContext: the single-flight
// generation is shared by every deduped caller, so it must not run under
// the leader's context — a leader hanging up mid-generation must not
// poison the result for followers (or for the cache).
func TestSharedGenerationDetachedFromCallerContext(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	svc := New(Options{
		Variant: "t",
		GenerateTraced: func(ctx context.Context, db, q string) (string, *pipeline.Trace, error) {
			close(started)
			<-gate
			if err := ctx.Err(); err != nil {
				return "", nil, err // would fire if the leader's ctx leaked in
			}
			return "ok", nil, nil
		},
	})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	leader := make(chan Evidence, 1)
	go func() {
		ev, _ := svc.GenerateTraced(ctx, "db", "q")
		leader <- ev
	}()
	<-started // the generation is in flight under the leader
	cancel()  // leader hangs up mid-generation
	close(gate)
	if ev := <-leader; ev.Text != "ok" {
		t.Fatalf("generation observed the leader's cancellation: %+v", ev)
	}
	// The result was cached despite the cancelled leader.
	warm, err := svc.GenerateTraced(context.Background(), "db", "q")
	if err != nil || !warm.CacheHit {
		t.Fatalf("follow-up = %+v, %v; want cache hit", warm, err)
	}
}

// TestFailedGenerationKeepsPartialTrace: on error the partial trace
// (naming the stage that aborted) survives to the caller.
func TestFailedGenerationKeepsPartialTrace(t *testing.T) {
	svc := New(Options{
		Variant: "t",
		GenerateTraced: func(ctx context.Context, db, q string) (string, *pipeline.Trace, error) {
			return "", &pipeline.Trace{
				Graph:  "g",
				Stages: []pipeline.StageTrace{{Stage: "bad", Err: "boom"}},
			}, errors.New("boom")
		},
	})
	defer svc.Close()
	ev, err := svc.GenerateTraced(context.Background(), "db", "q")
	if err == nil {
		t.Fatal("want error")
	}
	if ev.Trace == nil || len(ev.Trace.Stages) != 1 || ev.Trace.Stages[0].Err != "boom" {
		t.Fatalf("failure dropped the partial trace: %+v", ev.Trace)
	}
}
