package evserve

import "sync"

// flightCall is one in-flight generation shared by concurrent callers.
type flightCall struct {
	done chan struct{}
	val  Entry
	err  error
}

// flightGroup deduplicates concurrent work per key: the first caller for a
// key runs fn, later callers for the same key block until that run finishes
// and share its result. Unlike a cache this holds no history — the entry is
// dropped the moment the call completes.
type flightGroup struct {
	mu    sync.Mutex
	calls map[Key]*flightCall
}

// do runs fn once per key among concurrent callers. The boolean result
// reports whether this caller shared another caller's run instead of
// executing fn itself.
func (g *flightGroup) do(k Key, fn func() (Entry, error)) (Entry, error, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[Key]*flightCall)
	}
	if c, ok := g.calls[k]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[k] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, k)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
