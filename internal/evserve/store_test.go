// Store-integration tests live in the external test package: evstore (the
// store implementation) imports evserve, so an internal test file could
// not import it back without a cycle.
package evserve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/evserve"
	"repro/internal/evstore"
	"repro/internal/pipeline"
)

// tracedGen returns a deterministic traced generator that counts calls.
// Traces carry fixed wall times so persisted and regenerated runs are
// trivially distinguishable byte-for-byte.
func tracedGen(calls *atomic.Int64) evserve.TracedFunc {
	return func(ctx context.Context, db, question string) (string, *pipeline.Trace, error) {
		n := calls.Add(1)
		return db + "/" + question, &pipeline.Trace{
			Graph: "test_graph",
			Stages: []pipeline.StageTrace{
				{Stage: "extract", WallMicros: 11, Tokens: int(n)},
				{Stage: "generate", Deps: []string{"extract"}, WallMicros: 29, Tokens: 7},
			},
			WallMicros:   40,
			SerialMicros: 40,
		}, nil
	}
}

// TestWarmRestartByteIdenticalZeroGenerations is the tentpole's golden
// test: kill a service with a populated store, restart over the same
// directory, and every response — evidence and trace — must be
// byte-identical to the pre-restart one with zero generator invocations.
func TestWarmRestartByteIdenticalZeroGenerations(t *testing.T) {
	dir := t.TempDir()
	questions := make([]string, 12)
	for i := range questions {
		questions[i] = fmt.Sprintf("question-%02d", i)
	}

	store, err := evstore.Open(dir, evstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	svc := evserve.New(evserve.Options{
		Variant:        "golden",
		GenerateTraced: tracedGen(&calls),
		Store:          store,
	})
	ctx := context.Background()
	want := make(map[string][]byte, len(questions))
	for _, q := range questions {
		ev, err := svc.GenerateTraced(ctx, "bird-db", q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = b
	}
	if n := calls.Load(); n != int64(len(questions)) {
		t.Fatalf("first life ran %d generations, want %d", n, len(questions))
	}
	svc.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: fresh store handle over the same directory, a generator
	// that must never run.
	restored, err := evstore.Open(dir, evstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	svc2 := evserve.New(evserve.Options{
		Variant: "golden",
		GenerateTraced: func(ctx context.Context, db, question string) (string, *pipeline.Trace, error) {
			t.Errorf("generator invoked after warm restart for %s/%s", db, question)
			return "", nil, errors.New("must not generate")
		},
		Store: restored,
	})
	defer svc2.Close()

	st := svc2.Stats()
	if st.Restored != int64(len(questions)) {
		t.Fatalf("Restored = %d, want %d", st.Restored, len(questions))
	}
	for _, q := range questions {
		ev, err := svc2.GenerateTraced(ctx, "bird-db", q)
		if err != nil {
			t.Fatal(err)
		}
		if !ev.CacheHit {
			t.Fatalf("restarted service missed cache for %q", q)
		}
		got, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		// The pre-restart responses were fresh generations (CacheHit
		// false); the replayed ones are hits. Everything else — evidence
		// text and the full trace — must match byte for byte.
		var a, b evserve.Evidence
		if err := json.Unmarshal(want[q], &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(got, &b); err != nil {
			t.Fatal(err)
		}
		a.CacheHit, b.CacheHit = false, false
		ab, bb := mustMarshal(t, a), mustMarshal(t, b)
		if string(ab) != string(bb) {
			t.Fatalf("response for %q not byte-identical after restart:\n before %s\n after  %s", q, ab, bb)
		}
	}
	if st := svc2.Stats(); st.Generations != 0 {
		t.Fatalf("restarted service ran %d generations, want 0", st.Generations)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCloseFlushesStoreBeforeReturn is the regression test for the
// shutdown-ordering fix: Close must drain the worker pool and then flush
// the store, so a batched-flush store loses nothing on clean shutdown.
func TestCloseFlushesStoreBeforeReturn(t *testing.T) {
	dir := t.TempDir()
	// FlushEvery far above the write count: nothing reaches the OS unless
	// someone flushes.
	store, err := evstore.Open(dir, evstore.Options{FlushEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var calls atomic.Int64
	svc := evserve.New(evserve.Options{
		Variant:        "flush",
		GenerateTraced: tracedGen(&calls),
		Workers:        4,
		Store:          store,
	})
	reqs := make([]evserve.Request, 8)
	for i := range reqs {
		reqs[i] = evserve.Request{DB: "db", Question: fmt.Sprintf("q%d", i)}
	}
	if _, err := svc.GenerateAll(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	// Before Close, every append sits in the store's write buffer...
	if wal := readFile(t, filepath.Join(dir, "wal.evs")); len(wal) != 0 {
		t.Fatalf("appends reached disk before any flush: %d bytes", len(wal))
	}
	svc.Close()
	// ...and service Close alone (the store is still open, its own Close
	// not yet called) must have pushed them all to the OS.
	if wal := readFile(t, filepath.Join(dir, "wal.evs")); bytes.Count(wal, []byte{'\n'}) != len(reqs) {
		t.Fatalf("service Close did not flush the store: %q", wal)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := evstore.Open(dir, evstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if n := reopened.Len(); n != len(reqs) {
		t.Fatalf("clean shutdown lost writes: %d of %d entries durable", n, len(reqs))
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// failingStore implements evserve.Store and fails every operation, to pin
// the contract that store failures surface as counters, never as request
// errors.
type failingStore struct{}

func (failingStore) Load(func(evserve.Key, evserve.Entry)) error { return errors.New("load broken") }
func (failingStore) Append(evserve.Key, evserve.Entry) error     { return errors.New("append broken") }
func (failingStore) Flush() error                                { return errors.New("flush broken") }

func TestStoreFailuresAreCountedNotFatal(t *testing.T) {
	var calls atomic.Int64
	svc := evserve.New(evserve.Options{
		Variant:        "degraded",
		GenerateTraced: tracedGen(&calls),
		Store:          failingStore{},
	})
	ev, err := svc.GenerateTraced(context.Background(), "db", "q")
	if err != nil {
		t.Fatalf("request failed because the store is broken: %v", err)
	}
	if ev.Text != "db/q" {
		t.Fatalf("evidence = %q", ev.Text)
	}
	svc.Close()
	st := svc.Stats()
	// Load at New, Append at generation, Flush at Close: three failures.
	if st.StoreErrors != 3 {
		t.Errorf("StoreErrors = %d, want 3 (load, append, flush)", st.StoreErrors)
	}
	if st.StoreAppends != 0 || st.Restored != 0 {
		t.Errorf("appends/restored = %d/%d, want 0/0 on a broken store", st.StoreAppends, st.Restored)
	}
}

// TestRestoreFiltersOtherVariants: corpus stores are shared across
// variants (experiments.Env wires one bird store into gpt, deepseek and
// revised services), so replay must restore only this service's variant —
// otherwise foreign entries inflate the cache and, under a small
// CacheCapacity, evict the entries the service can actually hit.
func TestRestoreFiltersOtherVariants(t *testing.T) {
	dir := t.TempDir()
	store, err := evstore.Open(dir, evstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const perVariant = 8
	for _, variant := range []string{"seed_gpt", "seed_deepseek", "seed_revised"} {
		for i := 0; i < perVariant; i++ {
			k := evserve.KeyFor("db", variant, fmt.Sprintf("q%d", i))
			if err := store.Append(k, evserve.Entry{Evidence: variant}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := evstore.Open(dir, evstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	var calls atomic.Int64
	// A cache barely big enough for this variant's entries: foreign-variant
	// replay would evict our own.
	svc := evserve.New(evserve.Options{
		Variant:        "seed_deepseek",
		GenerateTraced: tracedGen(&calls),
		CacheCapacity:  perVariant,
		CacheShards:    1,
		Store:          reopened,
	})
	defer svc.Close()
	if st := svc.Stats(); st.Restored != perVariant {
		t.Fatalf("Restored = %d, want %d (own variant only)", st.Restored, perVariant)
	}
	for i := 0; i < perVariant; i++ {
		ev, err := svc.GenerateTraced(context.Background(), "db", fmt.Sprintf("q%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !ev.CacheHit || ev.Text != "seed_deepseek" {
			t.Fatalf("q%d: hit=%v text=%q — foreign variants polluted the replay", i, ev.CacheHit, ev.Text)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("generator ran %d times on a fully persisted variant", calls.Load())
	}
}

// TestRepeatCloseAfterStoreClosedNoPhantomErrors: Close is idempotent,
// including its store flush — a second Close after the store's owner
// closed it must not surface a phantom StoreError.
func TestRepeatCloseAfterStoreClosedNoPhantomErrors(t *testing.T) {
	store, err := evstore.Open(t.TempDir(), evstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	svc := evserve.New(evserve.Options{Variant: "v", GenerateTraced: tracedGen(&calls), Store: store})
	if _, err := svc.GenerateTraced(context.Background(), "db", "q"); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	svc.Close() // owner's store is gone; must not flush again
	if st := svc.Stats(); st.StoreErrors != 0 {
		t.Fatalf("StoreErrors = %d after repeat Close, want 0", st.StoreErrors)
	}
}

// TestCacheNamespaceRule pins the one shared namespace rule.
func TestCacheNamespaceRule(t *testing.T) {
	if got := evserve.CacheNamespace("seed_gpt", "bird"); got != "seed_gpt" {
		t.Errorf("bird namespace = %q", got)
	}
	if got := evserve.CacheNamespace("seed_gpt", "spider"); got != "seed_gpt_spider" {
		t.Errorf("spider namespace = %q", got)
	}
}

// TestStoreAppendsCounted: the happy-path counters.
func TestStoreAppendsCounted(t *testing.T) {
	store, err := evstore.Open(t.TempDir(), evstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var calls atomic.Int64
	svc := evserve.New(evserve.Options{Variant: "c", GenerateTraced: tracedGen(&calls), Store: store})
	defer svc.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := svc.GenerateTraced(ctx, "db", fmt.Sprintf("q%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Cache hit: no new append.
	if _, err := svc.GenerateTraced(ctx, "db", "q0"); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.StoreAppends != 3 || st.StoreErrors != 0 {
		t.Errorf("StoreAppends/StoreErrors = %d/%d, want 3/0", st.StoreAppends, st.StoreErrors)
	}
	if store.Len() != 3 {
		t.Errorf("store holds %d entries, want 3", store.Len())
	}
}
