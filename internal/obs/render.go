package obs

import (
	"fmt"
	"sort"
	"strings"
)

// RenderTree renders a trace's span tree as indented text — the shared
// renderer behind `evidencediag -fetch-trace` and sqlsh's `.trace on`.
//
//	trace 4bf9... req=ab12 /v1/query status=200 12.4ms
//	└─ request 12.4ms
//	   ├─ admission 0.1ms
//	   ├─ evserve.lookup 8.3ms cache_hit=false
//	   │  └─ stage:generate 8.1ms
//	   └─ sqlengine.execute 1.2ms rows=3 cost=41
func RenderTree(rec *TraceRecord) string {
	if rec == nil {
		return "(no trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s", rec.ID)
	if rec.RequestID != "" {
		fmt.Fprintf(&b, " req=%s", rec.RequestID)
	}
	if rec.Name != "" {
		fmt.Fprintf(&b, " %s", rec.Name)
	}
	if rec.Status != 0 {
		fmt.Fprintf(&b, " status=%d", rec.Status)
	}
	fmt.Fprintf(&b, " %s", fmtMicros(rec.DurationMicros))
	if rec.Err != "" {
		fmt.Fprintf(&b, " error=%q", rec.Err)
	}
	b.WriteByte('\n')

	children := make(map[string][]*Span)
	byID := make(map[string]*Span, len(rec.Spans))
	for i := range rec.Spans {
		byID[rec.Spans[i].SpanID] = &rec.Spans[i]
	}
	var roots []*Span
	for i := range rec.Spans {
		sp := &rec.Spans[i]
		if sp.ParentID != "" && byID[sp.ParentID] != nil {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			// Parent missing locally (e.g. the router-side parent span of a
			// replica trace): render as a root.
			roots = append(roots, sp)
		}
	}
	orderSpans(roots)
	for k := range children {
		orderSpans(children[k])
	}
	for i, sp := range roots {
		renderSpan(&b, sp, children, "", i == len(roots)-1)
	}
	return b.String()
}

func orderSpans(spans []*Span) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartMicros < spans[j].StartMicros })
}

func renderSpan(b *strings.Builder, sp *Span, children map[string][]*Span, prefix string, last bool) {
	connector, childPrefix := "├─ ", prefix+"│  "
	if last {
		connector, childPrefix = "└─ ", prefix+"   "
	}
	fmt.Fprintf(b, "%s%s%s %s", prefix, connector, sp.Name, fmtMicros(sp.DurationMicros))
	for _, k := range sortedAttrKeys(sp.Attrs) {
		fmt.Fprintf(b, " %s=%v", k, sp.Attrs[k])
	}
	if sp.Err != "" {
		fmt.Fprintf(b, " error=%q", sp.Err)
	}
	b.WriteByte('\n')
	kids := children[sp.SpanID]
	for i, kid := range kids {
		renderSpan(b, kid, children, childPrefix, i == len(kids)-1)
	}
}

func sortedAttrKeys(attrs map[string]any) []string {
	if len(attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtMicros(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
