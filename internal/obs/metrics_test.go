package obs

import (
	"strings"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	tests := []struct {
		name     string
		capacity int
		observe  []int64
		q        map[float64]int64
	}{
		{
			name:     "empty",
			capacity: 8,
			observe:  nil,
			q:        map[float64]int64{0: 0, 0.5: 0, 0.99: 0, 1: 0},
		},
		{
			name:     "single sample",
			capacity: 8,
			observe:  []int64{42},
			q:        map[float64]int64{0: 42, 0.5: 42, 0.9: 42, 1: 42},
		},
		{
			name:     "exact deciles",
			capacity: 16,
			observe:  []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
			// nearest-rank: rank = ceil(q*10)
			q: map[float64]int64{0: 10, 0.1: 10, 0.5: 50, 0.9: 90, 0.99: 100, 1: 100},
		},
		{
			name:     "unsorted input",
			capacity: 16,
			observe:  []int64{90, 10, 50, 30, 70},
			q:        map[float64]int64{0.5: 50, 1: 90, 0: 10},
		},
		{
			name:     "saturating ring keeps newest window",
			capacity: 4,
			// 8 observations into capacity 4: ring holds the last 4 (5,6,7,8).
			observe: []int64{1, 2, 3, 4, 5, 6, 7, 8},
			q:       map[float64]int64{0: 5, 0.5: 6, 1: 8},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.capacity)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			if got := h.Count(); got != int64(len(tc.observe)) {
				t.Fatalf("Count = %d, want %d", got, len(tc.observe))
			}
			for q, want := range tc.q {
				if got := h.Quantile(q); got != want {
					t.Errorf("Quantile(%v) = %d, want %d", q, got, want)
				}
			}
		})
	}
}

func TestHistogramSaturatedCountAndSum(t *testing.T) {
	h := NewHistogram(4)
	var sum int64
	for i := int64(1); i <= 10; i++ {
		h.Observe(i)
		sum += i
	}
	if h.Count() != 10 {
		t.Fatalf("Count = %d, want 10 (whole history, not window)", h.Count())
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	t.Run("both unsaturated", func(t *testing.T) {
		a, b := NewHistogram(8), NewHistogram(8)
		for _, v := range []int64{1, 2, 3} {
			a.Observe(v)
		}
		for _, v := range []int64{4, 5, 6} {
			b.Observe(v)
		}
		a.Merge(b)
		if a.Count() != 6 || a.Sum() != 21 {
			t.Fatalf("merged count/sum = %d/%d, want 6/21", a.Count(), a.Sum())
		}
		if got := a.Quantile(0.5); got != 3 { // rank ceil(0.5*6)=3 → 3rd smallest of {1..6}
			t.Fatalf("merged p50 = %d, want 3", got)
		}
		if got := a.Quantile(1); got != 6 {
			t.Fatalf("merged max = %d, want 6", got)
		}
	})
	t.Run("saturated source keeps whole-history count", func(t *testing.T) {
		a, b := NewHistogram(16), NewHistogram(4)
		for i := int64(1); i <= 10; i++ { // b window = {7,8,9,10}, extra count 6, extra sum 21
			b.Observe(i)
		}
		a.Merge(b)
		if a.Count() != 10 {
			t.Fatalf("merged count = %d, want 10", a.Count())
		}
		if a.Sum() != 55 {
			t.Fatalf("merged sum = %d, want 55", a.Sum())
		}
		// Quantiles only see b's surviving window.
		if got := a.Quantile(0); got != 7 {
			t.Fatalf("merged min = %d, want 7", got)
		}
	})
	t.Run("nil merge is a no-op", func(t *testing.T) {
		a := NewHistogram(4)
		a.Observe(1)
		a.Merge(nil)
		if a.Count() != 1 {
			t.Fatalf("count changed on nil merge")
		}
	})
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs_total", "requests", L("route", "/v1/query"))
	c2 := r.Counter("reqs_total", "requests", L("route", "/v1/query"))
	if c1 != c2 {
		t.Fatal("re-registering same name+labels should return the same counter")
	}
	c3 := r.Counter("reqs_total", "requests", L("route", "/v1/schema"))
	if c1 == c3 {
		t.Fatal("different labels must get a distinct counter")
	}
	h1 := r.Histogram("lat_us", "latency", 0, L("route", "/v1/query"))
	h2 := r.Histogram("lat_us", "latency", 0, L("route", "/v1/query"))
	if h1 != h2 {
		t.Fatal("re-registering same histogram should return the same instance")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total", "total queries", L("route", "/v1/query")).Add(7)
	r.Gauge("inflight", "in-flight requests").Set(2.5)
	r.GaugeFunc("cache_entries", "entries", func() float64 { return 31 })
	h := r.Histogram("latency_us", "request latency", 16, L("route", "/v1/query"))
	for _, v := range []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE queries_total counter",
		`queries_total{route="/v1/query"} 7`,
		"# TYPE inflight gauge",
		"inflight 2.5",
		"cache_entries 31",
		"# TYPE latency_us summary",
		`latency_us{quantile="0.5",route="/v1/query"} 50`,
		`latency_us{quantile="0.9",route="/v1/query"} 90`,
		`latency_us{quantile="0.99",route="/v1/query"} 100`,
		`latency_us_sum{route="/v1/query"} 550`,
		`latency_us_count{route="/v1/query"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", L("q", `he said "hi"`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `{q="he said \"hi\"\n"}`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}
