package obs

import (
	"context"
	"log/slog"
	"time"
)

// SlowLog emits one structured record per request at or over its
// threshold, carrying the trace ID, the per-span stage breakdown and the
// SQL — the artifact a human reads first when a query is slow. A zero
// threshold disables it.
type SlowLog struct {
	logger    *slog.Logger
	threshold time.Duration
}

// NewSlowLog builds a slow-query log writing to logger (nil uses
// slog.Default). threshold <= 0 disables logging.
func NewSlowLog(logger *slog.Logger, threshold time.Duration) *SlowLog {
	if logger == nil {
		logger = slog.Default()
	}
	return &SlowLog{logger: logger, threshold: threshold}
}

// Threshold returns the configured threshold (0 on nil).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record logs rec if it crossed the threshold. sql may be empty for
// non-query routes. Safe on nil receiver and nil record.
func (l *SlowLog) Record(rec *TraceRecord, sql string) {
	if l == nil || l.threshold <= 0 || rec == nil || !rec.Slow(l.threshold) {
		return
	}
	if !l.logger.Enabled(context.Background(), slog.LevelWarn) {
		return // don't build the stage breakdown for a disabled sink
	}
	attrs := []any{
		slog.String("trace_id", rec.ID),
		slog.String("request_id", rec.RequestID),
		slog.String("route", rec.Name),
		slog.Int("status", rec.Status),
		slog.Int64("duration_us", rec.DurationMicros),
	}
	if sql != "" {
		attrs = append(attrs, slog.String("sql", sql))
	}
	// Stage breakdown: one group attr per span, duration plus error flag.
	stages := make([]any, 0, len(rec.Spans))
	for i := range rec.Spans {
		sp := &rec.Spans[i]
		if sp.Err != "" {
			stages = append(stages, slog.Group(sp.Name,
				slog.Int64("us", sp.DurationMicros), slog.String("error", sp.Err)))
		} else {
			stages = append(stages, slog.Group(sp.Name, slog.Int64("us", sp.DurationMicros)))
		}
	}
	attrs = append(attrs, slog.Group("stages", stages...))
	l.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query", toSlogAttrs(attrs)...)
}

func toSlogAttrs(attrs []any) []slog.Attr {
	out := make([]slog.Attr, 0, len(attrs))
	for _, a := range attrs {
		if sa, ok := a.(slog.Attr); ok {
			out = append(out, sa)
		}
	}
	return out
}
