package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	h := http.Header{}
	traceID, spanID := NewTraceID(), NewSpanID()
	Inject(h, traceID, spanID)
	got := h.Get(TraceparentHeader)
	want := "00-" + traceID + "-" + spanID + "-01"
	if got != want {
		t.Fatalf("traceparent = %q, want %q", got, want)
	}
	tid, pid, ok := Extract(h)
	if !ok || tid != traceID || pid != spanID {
		t.Fatalf("Extract = (%q, %q, %v), want (%q, %q, true)", tid, pid, ok, traceID, spanID)
	}
}

func TestExtractRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // all-zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16) + "-01", // non-hex
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16),         // 3 parts
	}
	for _, v := range cases {
		h := http.Header{}
		if v != "" {
			h.Set(TraceparentHeader, v)
		}
		if _, _, ok := Extract(h); ok {
			t.Errorf("Extract accepted malformed traceparent %q", v)
		}
	}
}

func TestRequestIDFreshWhenAbsent(t *testing.T) {
	h := http.Header{}
	id := RequestID(h)
	if id == "" {
		t.Fatal("RequestID returned empty for absent header")
	}
	h.Set(RequestIDHeader, "client-supplied")
	if got := RequestID(h); got != "client-supplied" {
		t.Fatalf("RequestID = %q, want client-supplied", got)
	}
}

func TestSpanTreeAndFinish(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "", "req1")
	root := tr.StartRoot("request", "remoteparent0000")
	ctx = context.WithValue(ctx, spanKey{}, root)

	cctx, child := StartSpan(ctx, "stage.a")
	child.SetAttr("cache_hit", true)
	_, grand := StartSpan(cctx, "stage.a.inner")
	grand.End()
	child.End()
	_, failed := StartSpan(ctx, "stage.b")
	failed.Fail("boom")
	root.Child("measured", time.Now().Add(-time.Millisecond), time.Millisecond, map[string]any{"rows": 3})
	root.End()

	rec := tr.Finish("/v1/query", 200, "")
	if rec == nil || len(rec.Spans) != 5 {
		t.Fatalf("Finish: got %+v, want 5 spans", rec)
	}
	if rec.ID != tr.ID() || rec.RequestID != "req1" || rec.Status != 200 {
		t.Fatalf("record header wrong: %+v", rec)
	}
	byName := map[string]Span{}
	for _, sp := range rec.Spans {
		byName[sp.Name] = sp
		if sp.DurationMicros <= 0 {
			t.Errorf("span %s has non-positive duration %d", sp.Name, sp.DurationMicros)
		}
	}
	if byName["request"].ParentID != "remoteparent0000" {
		t.Errorf("root parent = %q, want remote parent", byName["request"].ParentID)
	}
	if byName["stage.a"].ParentID != byName["request"].SpanID {
		t.Errorf("stage.a parent = %q, want root span id", byName["stage.a"].ParentID)
	}
	if byName["stage.a.inner"].ParentID != byName["stage.a"].SpanID {
		t.Errorf("stage.a.inner parent wrong")
	}
	if byName["stage.b"].Err != "boom" {
		t.Errorf("stage.b error = %q, want boom", byName["stage.b"].Err)
	}
	if byName["stage.a"].Attrs["cache_hit"] != true {
		t.Errorf("stage.a attrs = %v", byName["stage.a"].Attrs)
	}
	if !rec.Errored() {
		t.Error("record with errored span should report Errored")
	}

	tree := RenderTree(rec)
	for _, want := range []string{"request", "stage.a", "stage.a.inner", "stage.b", "measured", "rows=3", `error="boom"`} {
		if !strings.Contains(tree, want) {
			t.Errorf("RenderTree missing %q:\n%s", want, tree)
		}
	}
}

func TestDisabledTracingIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("StartSpan without collector should return nil span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without collector should not derive a new context")
	}
	// All nil-receiver operations must be safe.
	sp.End()
	sp.Fail("x")
	sp.SetAttr("k", 1)
	sp.Child("c", time.Now(), time.Millisecond, nil)
	var tr *Trace
	if tr.Finish("x", 0, "") != nil {
		t.Fatal("nil trace Finish should return nil")
	}
	if tr.StartRoot("x", "") != nil {
		t.Fatal("nil trace StartRoot should return nil")
	}
}
