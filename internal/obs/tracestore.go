package obs

import (
	"sync"
	"time"
)

// TraceRecord is one finished trace: the immutable snapshot Trace.Finish
// produces and the unit the trace store retains and /v1/traces serves.
type TraceRecord struct {
	ID        string `json:"trace_id"`
	RequestID string `json:"request_id,omitempty"`
	// Name is the request route or operation the trace is filed under.
	Name string `json:"name"`
	// Status is the HTTP status the request finished with (0 when the
	// trace did not come from an HTTP handler).
	Status int    `json:"status,omitempty"`
	Err    string `json:"error,omitempty"`
	Spans  []Span `json:"spans"`
	// StartMicros / DurationMicros are the envelope over all spans.
	StartMicros    int64 `json:"start_us"`
	DurationMicros int64 `json:"duration_us"`
}

// Slow reports whether the trace took at least threshold (threshold <= 0
// never matches).
func (r *TraceRecord) Slow(threshold time.Duration) bool {
	return threshold > 0 && r.DurationMicros >= threshold.Microseconds()
}

// Errored reports whether the request failed (HTTP >= 500, an explicit
// error, or any errored span).
func (r *TraceRecord) Errored() bool {
	if r.Status >= 500 || r.Err != "" {
		return true
	}
	for i := range r.Spans {
		if r.Spans[i].Err != "" {
			return true
		}
	}
	return false
}

// TraceSummary is the list form served by GET /v1/traces.
type TraceSummary struct {
	ID             string `json:"trace_id"`
	RequestID      string `json:"request_id,omitempty"`
	Name           string `json:"name"`
	Status         int    `json:"status,omitempty"`
	Err            string `json:"error,omitempty"`
	Spans          int    `json:"spans"`
	StartMicros    int64  `json:"start_us"`
	DurationMicros int64  `json:"duration_us"`
	Slow           bool   `json:"slow,omitempty"`
	Errored        bool   `json:"errored,omitempty"`
}

// TraceStore retains finished traces in bounded memory: a ring of the
// most recent traces plus a second ring that only slow or errored traces
// enter, so the interesting traces survive a burst of healthy traffic
// that would otherwise rotate them out. Lookup is by trace ID.
type TraceStore struct {
	slowThreshold time.Duration

	mu     sync.RWMutex
	recent ring
	kept   ring
	byID   map[string][]*TraceRecord
}

// ring is a fixed-capacity FIFO of trace records.
type ring struct {
	buf  []*TraceRecord
	next int
	full bool
}

func newRing(capacity int) ring { return ring{buf: make([]*TraceRecord, capacity)} }

// push inserts rec and returns the record it evicted, if any.
func (g *ring) push(rec *TraceRecord) *TraceRecord {
	if len(g.buf) == 0 {
		return rec // capacity 0: nothing retained, rec itself is "evicted"
	}
	old := g.buf[g.next]
	g.buf[g.next] = rec
	g.next++
	if g.next == len(g.buf) {
		g.next = 0
		g.full = true
	}
	return old
}

// newestFirst appends the ring's records, newest first, to out.
func (g *ring) newestFirst(out []*TraceRecord) []*TraceRecord {
	n := g.next
	if g.full {
		n = len(g.buf)
	}
	for i := 0; i < n; i++ {
		idx := g.next - 1 - i
		if idx < 0 {
			idx += len(g.buf)
		}
		if g.buf[idx] != nil {
			out = append(out, g.buf[idx])
		}
	}
	return out
}

// NewTraceStore builds a store keeping up to capacity recent traces plus
// up to capacity slow/error traces (capacity <= 0 uses 256). Traces at or
// over slowThreshold are classed slow; slowThreshold <= 0 disables the
// slow class (errors are always kept).
func NewTraceStore(capacity int, slowThreshold time.Duration) *TraceStore {
	if capacity <= 0 {
		capacity = 256
	}
	return &TraceStore{
		slowThreshold: slowThreshold,
		recent:        newRing(capacity),
		kept:          newRing(capacity),
		byID:          make(map[string][]*TraceRecord),
	}
}

// Add files a finished trace. Nil records (tracing disabled) are ignored.
func (s *TraceStore) Add(rec *TraceRecord) {
	if s == nil || rec == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexAdd(rec)
	var evicted *TraceRecord
	if rec.Errored() || rec.Slow(s.slowThreshold) {
		evicted = s.kept.push(rec)
	} else {
		evicted = s.recent.push(rec)
	}
	if evicted != nil {
		s.indexRemove(evicted)
	}
}

func (s *TraceStore) indexAdd(rec *TraceRecord) {
	s.byID[rec.ID] = append(s.byID[rec.ID], rec)
}

func (s *TraceStore) indexRemove(rec *TraceRecord) {
	recs := s.byID[rec.ID]
	for i, r := range recs {
		if r == rec {
			recs = append(recs[:i], recs[i+1:]...)
			break
		}
	}
	if len(recs) == 0 {
		delete(s.byID, rec.ID)
	} else {
		s.byID[rec.ID] = recs
	}
}

// Get returns the most recently filed trace with the given ID, or nil.
func (s *TraceStore) Get(id string) *TraceRecord {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs := s.byID[id]
	if len(recs) == 0 {
		return nil
	}
	return recs[len(recs)-1]
}

// List returns summaries of retained traces, newest first, slow/error
// traces included, up to limit (limit <= 0 means all).
func (s *TraceStore) List(limit int) []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	recs := make([]*TraceRecord, 0, 64)
	recs = s.recent.newestFirst(recs)
	recs = s.kept.newestFirst(recs)
	s.mu.RUnlock()

	// Order across both rings by start time, newest first.
	sortRecordsNewestFirst(recs)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	out := make([]TraceSummary, len(recs))
	for i, r := range recs {
		out[i] = TraceSummary{
			ID:             r.ID,
			RequestID:      r.RequestID,
			Name:           r.Name,
			Status:         r.Status,
			Err:            r.Err,
			Spans:          len(r.Spans),
			StartMicros:    r.StartMicros,
			DurationMicros: r.DurationMicros,
			Slow:           r.Slow(s.slowThreshold),
			Errored:        r.Errored(),
		}
	}
	return out
}

func sortRecordsNewestFirst(recs []*TraceRecord) {
	// Insertion sort: lists are short (bounded by 2×capacity) and mostly
	// ordered already.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].StartMicros > recs[j-1].StartMicros; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// Len reports how many traces are currently retained.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, recs := range s.byID {
		n += len(recs)
	}
	return n
}
