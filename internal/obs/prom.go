package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// summaryQuantiles are the quantile labels emitted for each histogram.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Histograms are rendered as summaries
// (exact quantiles over the sample window) plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.RUnlock()

	// Group by family name so HELP/TYPE headers appear once per family,
	// preserving first-registration order of families.
	var order []string
	families := make(map[string][]*metric)
	for _, m := range metrics {
		if _, ok := families[m.name]; !ok {
			order = append(order, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}

	var b strings.Builder
	for _, name := range order {
		fam := families[name]
		if fam[0].help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(fam[0].help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, promType(fam[0].kind))
		for _, m := range fam {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", name, labelString(m.labels, nil), m.counter.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", name, labelString(m.labels, nil), formatFloat(m.gauge.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(&b, "%s%s %s\n", name, labelString(m.labels, nil), formatFloat(m.fn()))
			case kindHistogram:
				qv := m.hist.Quantiles(summaryQuantiles...)
				for i, q := range summaryQuantiles {
					extra := []Label{{Key: "quantile", Value: formatFloat(q)}}
					fmt.Fprintf(&b, "%s%s %d\n", name, labelString(m.labels, extra), qv[i])
				}
				fmt.Fprintf(&b, "%s_sum%s %d\n", name, labelString(m.labels, nil), m.hist.Sum())
				fmt.Fprintf(&b, "%s_count%s %d\n", name, labelString(m.labels, nil), m.hist.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promType(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "summary"
	default:
		return "gauge"
	}
}

// labelString renders {k="v",...} with keys sorted, or "" for no labels.
func labelString(labels, extra []Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
