// Package obs is the fleet's observability layer: one place for the
// span/trace model, the metrics registry, the bounded in-memory trace
// store, the slow-query log and the debug (pprof) listener that seedd,
// seedrouter and the benchmark harnesses all share.
//
// The design splits into four independent pieces:
//
//   - Tracing: a request gets one Trace (collector) carried through
//     context; code under it opens Spans (StartSpan / Span.Child). The
//     trace ID and parent span ID cross process boundaries in a
//     W3C-traceparent-style header (Inject/Extract), so a query that
//     enters at seedrouter and is served by a seedd replica is one trace.
//     With no collector in the context every span operation is a no-op on
//     a nil *Span — instrumented code pays near nothing when tracing is
//     off.
//
//   - Metrics: a Registry of counters, gauges, gauge callbacks and
//     lock-free exact-quantile histograms, rendered in Prometheus text
//     exposition format. Every subsystem (server routes, admission,
//     evserve, evstore, sqlengine plan caches, the fleet router)
//     registers into one Registry per process, replacing the previous
//     per-subsystem ad-hoc /metrics structs as the exposition source.
//
//   - Trace retention: TraceStore keeps finished traces in a bounded ring
//     plus a second always-keep ring for slow and errored traces, behind
//     GET /v1/traces and GET /v1/traces/{id}.
//
//   - Debug: ServeDebug stands up net/http/pprof and runtime/trace
//     endpoints on a loopback-only listener, opt-in per daemon.
package obs

import (
	"encoding/hex"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
)

// Header names used for cross-process propagation. TraceparentHeader
// follows the W3C trace-context shape (version-traceid-spanid-flags);
// RequestIDHeader is the log-join key echoed on every response.
const (
	TraceparentHeader = "traceparent"
	RequestIDHeader   = "X-Request-Id"
	// TraceIDHeader is stamped on responses by traced servers so a client
	// (or a CI smoke) can fetch the trace it just produced from
	// /v1/traces/{id} without parsing log output.
	TraceIDHeader = "X-Trace-Id"
	// FleetAttemptHeader carries the router's attempt index (0 = first
	// try, >0 = retry/hedge) to the replica, which records it on the
	// router.forward span — that is how a failed-over request's trace
	// shows the successor replica serving a retried attempt.
	FleetAttemptHeader = "X-Fleet-Attempt"
)

// idRand is a process-local seeded PCG behind a mutex: cheaper than
// crypto/rand per span, race-safe, and collision-resistant enough for
// trace IDs scoped to a bounded in-memory ring.
var (
	idMu   sync.Mutex
	idRand = rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
)

func randHex(nBytes int) string {
	b := make([]byte, nBytes)
	idMu.Lock()
	for i := 0; i < nBytes; i += 8 {
		v := idRand.Uint64()
		for j := 0; j < 8 && i+j < nBytes; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	idMu.Unlock()
	return hex.EncodeToString(b)
}

// NewTraceID returns a fresh 16-byte trace ID in lowercase hex.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a fresh 8-byte span ID in lowercase hex.
func NewSpanID() string { return randHex(8) }

// NewRequestID returns a fresh request ID (8 bytes of hex). Request IDs
// are the log-join key between router and replica logs; they are
// propagated verbatim when a client already supplied one.
func NewRequestID() string { return randHex(8) }

// Inject writes the traceparent header for (traceID, spanID) into h.
// spanID becomes the parent of whatever span the receiving process opens.
func Inject(h http.Header, traceID, spanID string) {
	if traceID == "" {
		return
	}
	if spanID == "" {
		spanID = NewSpanID()
	}
	h.Set(TraceparentHeader, "00-"+traceID+"-"+spanID+"-01")
}

// Extract parses the traceparent header from h. It returns the trace ID
// and parent span ID, and reports whether a well-formed header was
// present. Malformed headers are ignored (ok=false) rather than erroring:
// a bad client header should never fail a request.
func Extract(h http.Header) (traceID, parentSpanID string, ok bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return "", "", false
	}
	parts := strings.Split(v, "-")
	if len(parts) != 4 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", "", false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) || allZero(parts[1]) || allZero(parts[2]) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// RequestID returns the request ID from h, generating a fresh one when
// the header is absent or empty.
func RequestID(h http.Header) string {
	if id := h.Get(RequestIDHeader); id != "" {
		return id
	}
	return NewRequestID()
}
