package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkRecord(id string, status int, dur time.Duration, errMsg string) *TraceRecord {
	return &TraceRecord{
		ID:             id,
		Name:           "/v1/query",
		Status:         status,
		Err:            errMsg,
		Spans:          []Span{{TraceID: id, SpanID: NewSpanID(), Name: "request", StartMicros: time.Now().UnixMicro(), DurationMicros: dur.Microseconds()}},
		StartMicros:    time.Now().UnixMicro(),
		DurationMicros: dur.Microseconds(),
	}
}

func TestTraceStoreGetAndList(t *testing.T) {
	s := NewTraceStore(4, 50*time.Millisecond)
	for i := 0; i < 3; i++ {
		s.Add(mkRecord(fmt.Sprintf("t%d", i), 200, time.Millisecond, ""))
	}
	if got := s.Get("t1"); got == nil || got.ID != "t1" {
		t.Fatalf("Get(t1) = %v", got)
	}
	if got := s.Get("missing"); got != nil {
		t.Fatalf("Get(missing) = %v, want nil", got)
	}
	sums := s.List(0)
	if len(sums) != 3 {
		t.Fatalf("List len = %d, want 3", len(sums))
	}
	if sums[0].ID != "t2" { // newest first
		t.Fatalf("List[0] = %s, want t2", sums[0].ID)
	}
	if got := s.List(2); len(got) != 2 {
		t.Fatalf("List(2) len = %d", len(got))
	}
}

func TestTraceStoreKeepsSlowAndErrorUnderChurn(t *testing.T) {
	s := NewTraceStore(4, 50*time.Millisecond)
	s.Add(mkRecord("slow", 200, 80*time.Millisecond, ""))
	s.Add(mkRecord("err", 500, time.Millisecond, "exec failed"))
	// Churn far past the recent ring's capacity.
	for i := 0; i < 32; i++ {
		s.Add(mkRecord(fmt.Sprintf("fast%d", i), 200, time.Millisecond, ""))
	}
	if s.Get("slow") == nil {
		t.Fatal("slow trace evicted by healthy churn")
	}
	if s.Get("err") == nil {
		t.Fatal("errored trace evicted by healthy churn")
	}
	if s.Get("fast0") != nil {
		t.Fatal("oldest fast trace should have rotated out")
	}
	// Only the last 4 fast traces plus the 2 kept ones remain.
	if n := s.Len(); n != 6 {
		t.Fatalf("Len = %d, want 6", n)
	}
	var slow, errored bool
	for _, sum := range s.List(0) {
		if sum.ID == "slow" && sum.Slow {
			slow = true
		}
		if sum.ID == "err" && sum.Errored {
			errored = true
		}
	}
	if !slow || !errored {
		t.Fatalf("summaries missing slow/errored flags: slow=%v errored=%v", slow, errored)
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var s *TraceStore
	s.Add(mkRecord("x", 200, time.Millisecond, ""))
	if s.Get("x") != nil || s.List(0) != nil || s.Len() != 0 {
		t.Fatal("nil store should be inert")
	}
	real := NewTraceStore(2, 0)
	real.Add(nil) // nil record (tracing disabled) must be ignored
	if real.Len() != 0 {
		t.Fatal("nil record should not be stored")
	}
}

// TestConcurrentRegistryAndTraceRing hammers the metrics registry and the
// trace ring from 8 goroutines; run under -race this is the data-race
// gate for the whole obs hot path.
func TestConcurrentRegistryAndTraceRing(t *testing.T) {
	reg := NewRegistry()
	store := NewTraceStore(64, 5*time.Millisecond)
	const goroutines = 8
	const iters = 400

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			route := fmt.Sprintf("/r%d", g%3)
			for i := 0; i < iters; i++ {
				reg.Counter("reqs_total", "", L("route", route)).Inc()
				reg.Gauge("inflight", "").Set(float64(i))
				reg.GaugeFunc(fmt.Sprintf("g%d_stat", g), "", func() float64 { return float64(g) })
				h := reg.Histogram("lat_us", "", 128, L("route", route))
				h.Observe(int64(i))
				if i%50 == 0 {
					h.Quantile(0.99)
				}

				ctx, tr := NewTrace(context.Background(), "", NewRequestID())
				sctx, sp := StartSpan(context.WithValue(ctx, spanKey{}, tr.StartRoot("request", "")), "work")
				_, inner := StartSpan(sctx, "inner")
				inner.SetAttr("i", i)
				inner.End()
				sp.End()
				status := 200
				if i%97 == 0 {
					status = 500
				}
				store.Add(tr.Finish(route, status, ""))
				if i%25 == 0 {
					store.List(10)
					store.Get(tr.ID())
				}
			}
		}(g)
	}
	// Concurrent exposition while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b sink
			_ = reg.WritePrometheus(&b)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done

	if got := reg.Counter("reqs_total", "", L("route", "/r0")).Value() +
		reg.Counter("reqs_total", "", L("route", "/r1")).Value() +
		reg.Counter("reqs_total", "", L("route", "/r2")).Value(); got != goroutines*iters {
		t.Fatalf("counter total = %d, want %d", got, goroutines*iters)
	}
	if store.Len() == 0 {
		t.Fatal("trace store empty after concurrent adds")
	}
}

type sink struct{}

func (sink) Write(p []byte) (int, error) { return len(p), nil }
