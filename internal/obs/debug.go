package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/trace"
	"strconv"
	"time"
)

// ServeDebug starts the opt-in profiling listener: net/http/pprof plus a
// runtime/trace capture endpoint, on its own mux (never DefaultServeMux)
// and refusing non-loopback bind addresses — profiling data includes
// argument values and must not be exposed fleet-wide by accident.
//
// Endpoints:
//
//	/debug/pprof/           index (heap, goroutine, profile, ...)
//	/debug/rtrace?sec=N     runtime/trace capture, default 1s, max 60s
//
// It returns the bound address (useful with ":0") and a shutdown func.
func ServeDebug(addr string) (string, func(), error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return "", nil, fmt.Errorf("debug addr %q: %w", addr, err)
	}
	if host != "" && host != "localhost" {
		if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
			return "", nil, fmt.Errorf("debug addr %q is not loopback; profiling endpoints are loopback-only", addr)
		}
	}
	if host == "" {
		// ":6060" would bind all interfaces — pin it to loopback.
		_, port, _ := net.SplitHostPort(addr)
		addr = net.JoinHostPort("127.0.0.1", port)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/rtrace", handleRuntimeTrace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// handleRuntimeTrace streams a runtime execution trace (go tool trace)
// for ?sec= seconds.
func handleRuntimeTrace(w http.ResponseWriter, r *http.Request) {
	sec := 1
	if v := r.URL.Query().Get("sec"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 60 {
			http.Error(w, "sec must be an integer in [1,60]", http.StatusBadRequest)
			return
		}
		sec = n
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.out"`)
	if err := trace.Start(w); err != nil {
		// Most commonly: a concurrent capture is already running.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	select {
	case <-time.After(time.Duration(sec) * time.Second):
	case <-r.Context().Done():
	}
	trace.Stop()
}
