package obs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Span is one timed operation inside a trace. Spans form a tree through
// ParentID; times are absolute unix microseconds so spans recorded by
// different components of one process line up without shared state.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartMicros is the span start as unix microseconds.
	StartMicros int64 `json:"start_us"`
	// DurationMicros is the span wall time; 0 while the span is open.
	DurationMicros int64 `json:"duration_us"`
	// Attrs carries span attributes (plan-cache hit, row count, logical
	// cost, batch fill, ...). Values are JSON-friendly scalars.
	Attrs map[string]any `json:"attrs,omitempty"`
	// Err is the span failure, empty on success.
	Err string `json:"error,omitempty"`

	start time.Time
	tr    *Trace
}

// Trace collects the spans of one request. It is carried through
// context.Context; a nil *Trace (no collector installed) makes every span
// operation a no-op, which is the tracing-disabled fast path.
type Trace struct {
	id        string
	requestID string

	mu    sync.Mutex
	spans []*Span
	root  *Span
}

type traceKey struct{}
type spanKey struct{}

// NewTrace installs a new trace collector in ctx. traceID may come from
// an incoming traceparent header; empty generates a fresh one. requestID
// is attached to the finished record for log joining.
func NewTrace(ctx context.Context, traceID, requestID string) (context.Context, *Trace) {
	if traceID == "" {
		traceID = NewTraceID()
	}
	tr := &Trace{id: traceID, requestID: requestID}
	return context.WithValue(ctx, traceKey{}, tr), tr
}

// TraceFrom returns the trace collector installed in ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// CurrentSpan returns the innermost open span in ctx, or nil. Nil is safe
// to use: every Span method no-ops on a nil receiver.
func CurrentSpan(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ContextWithSpan returns ctx carrying sp as the innermost span — how a
// server installs its root span so StartSpan calls below parent to it.
// A nil sp returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a span named name as a child of the innermost span in
// ctx (or as a root when there is none) and returns a derived context
// carrying it. Without a collector in ctx it returns (ctx, nil) — the
// disabled path allocates nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := ""
	if cur := CurrentSpan(ctx); cur != nil {
		parent = cur.SpanID
	}
	sp := tr.newSpan(name, parent, time.Now())
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartRoot opens a span with an explicit parent span ID — the entry
// point for servers that received a traceparent header: the remote span
// becomes the parent even though it lives in another process.
func (t *Trace) StartRoot(name, parentSpanID string) *Span {
	if t == nil {
		return nil
	}
	sp := t.newSpan(name, parentSpanID, time.Now())
	t.mu.Lock()
	if t.root == nil {
		t.root = sp
	}
	t.mu.Unlock()
	return sp
}

// Root returns the first root-started span (nil-safe).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

func (t *Trace) newSpan(name, parent string, start time.Time) *Span {
	sp := &Span{
		TraceID:     t.id,
		SpanID:      NewSpanID(),
		ParentID:    parent,
		Name:        name,
		StartMicros: start.UnixMicro(),
		start:       start,
		tr:          t,
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span, fixing its duration. Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.DurationMicros == 0 {
		s.DurationMicros = time.Since(s.start).Microseconds()
		if s.DurationMicros == 0 {
			s.DurationMicros = 1 // a closed span is never mistaken for an open one
		}
	}
	s.tr.mu.Unlock()
}

// Fail records an error on the span (stringified) and closes it.
func (s *Span) Fail(v any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Err = fmt.Sprint(v)
	s.tr.mu.Unlock()
	s.End()
}

// SetAttr sets one attribute; no-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any, 4)
	}
	s.Attrs[key] = value
	s.tr.mu.Unlock()
}

// Child records an already-measured operation as a finished child span —
// used to absorb externally timed work (pipeline stage traces, the
// single-flight leader's generation and store-append timings) into the
// span tree. start/duration are the operation's own measurements.
func (s *Span) Child(name string, start time.Time, duration time.Duration, attrs map[string]any) *Span {
	if s == nil {
		return nil
	}
	sp := s.tr.newSpan(name, s.SpanID, start)
	s.tr.mu.Lock()
	sp.DurationMicros = duration.Microseconds()
	if sp.DurationMicros == 0 {
		sp.DurationMicros = 1
	}
	if len(attrs) > 0 {
		sp.Attrs = attrs
	}
	s.tr.mu.Unlock()
	return sp
}

// Finish snapshots the trace into an immutable TraceRecord. Open spans
// are closed at the snapshot instant. name/status/err describe the
// request outcome the record is filed under.
func (t *Trace) Finish(name string, status int, errMsg string) *TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := &TraceRecord{
		ID:        t.id,
		RequestID: t.requestID,
		Name:      name,
		Status:    status,
		Err:       errMsg,
		Spans:     make([]Span, len(t.spans)),
	}
	now := time.Now()
	for i, sp := range t.spans {
		if sp.DurationMicros == 0 {
			sp.DurationMicros = now.Sub(sp.start).Microseconds()
			if sp.DurationMicros == 0 {
				sp.DurationMicros = 1
			}
		}
		cp := *sp
		cp.tr = nil
		rec.Spans[i] = cp
	}
	if len(rec.Spans) > 0 {
		rec.StartMicros = rec.Spans[0].StartMicros
		var end int64
		for i := range rec.Spans {
			if e := rec.Spans[i].StartMicros + rec.Spans[i].DurationMicros; e > end {
				end = e
			}
			if rec.Spans[i].StartMicros < rec.StartMicros {
				rec.StartMicros = rec.Spans[i].StartMicros
			}
		}
		rec.DurationMicros = end - rec.StartMicros
	}
	return rec
}
