package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair. Labels distinguish instances of the
// same metric family (e.g. requests_total{route="/v1/query"}).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates exposition behaviour.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instance: a family name + label set + value.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry is a concurrent metrics registry. Registration is idempotent
// per (name, labels) — re-registering returns the existing instance — so
// hot paths may register lazily without coordination. A Registry is safe
// for concurrent registration, observation and exposition.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	index   map[string]*metric // name + label signature
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

func labelSig(name string, labels []Label) string {
	s := name
	for _, l := range labels {
		s += "\x00" + l.Key + "\x01" + l.Value
	}
	return s
}

func (r *Registry) register(m *metric) *metric {
	sig := labelSig(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.index[sig]; ok {
		return existing
	}
	r.index[sig] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns the existing) monotonically increasing
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{name: name, help: help, kind: kindCounter, labels: labels, counter: &Counter{}})
	return m.counter
}

// Gauge registers (or returns the existing) settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(&metric{name: name, help: help, kind: kindGauge, labels: labels, gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at exposition time.
// This is how snapshot-style subsystem stats (evserve, evstore, plan
// caches, admission) surface without restructuring their counters.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, labels: labels, fn: fn})
}

// Histogram registers (or returns the existing) exact-quantile histogram
// with the given sample capacity (0 uses DefaultHistogramCapacity).
func (r *Registry) Histogram(name, help string, capacity int, labels ...Label) *Histogram {
	m := r.register(&metric{name: name, help: help, kind: kindHistogram, labels: labels, hist: NewHistogram(capacity)})
	return m.hist
}

// Counter is a lock-free monotonic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a lock-free settable value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultHistogramCapacity is the sample-ring size a zero capacity
// requests: quantiles are exact up to this many observations and computed
// over the most recent window beyond it.
const DefaultHistogramCapacity = 4096

// Histogram is a lock-free histogram with exact quantiles: observations
// land in a fixed ring of samples via an atomic cursor, so up to its
// capacity the quantiles are exact over everything observed, and past
// capacity (saturation) they are exact over the most recent window.
// Count and Sum always cover every observation.
type Histogram struct {
	samples []atomic.Int64
	// cursor counts Observe calls only — it is the ring write position.
	// count additionally includes merged-in observations whose samples
	// never entered this ring (see Merge), so it must not index samples.
	cursor atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram builds a histogram with the given sample capacity
// (0 or negative uses DefaultHistogramCapacity).
func NewHistogram(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = DefaultHistogramCapacity
	}
	return &Histogram{samples: make([]atomic.Int64, capacity)}
}

// Observe records one value. Values are int64 by design: the fleet
// observes microseconds and counts, and integer samples keep the ring
// atomic without float bit-punning.
func (h *Histogram) Observe(v int64) {
	i := h.cursor.Add(1) - 1
	h.samples[i%int64(len(h.samples))].Store(v)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (including any that have
// rotated out of the sample ring).
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns Sum/Count, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// window snapshots the live samples: all of them before saturation, the
// whole ring after.
func (h *Histogram) window() []int64 {
	n := h.cursor.Load()
	if n > int64(len(h.samples)) {
		n = int64(len(h.samples))
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = h.samples[i].Load()
	}
	return out
}

// Quantile returns the exact q-quantile (nearest-rank: the smallest
// sample such that at least ceil(q*n) samples are <= it) over the current
// sample window. q is clamped to [0, 1]; q=0 is the minimum, q=1 the
// maximum. It returns 0 before any observation.
func (h *Histogram) Quantile(q float64) int64 {
	snap := h.window()
	return quantileOf(snap, q)
}

// Quantiles returns several quantiles from one snapshot+sort — cheaper
// than repeated Quantile calls and consistent within one exposition.
func (h *Histogram) Quantiles(qs ...float64) []int64 {
	snap := h.window()
	if len(snap) == 0 {
		return make([]int64, len(qs))
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = sortedQuantile(snap, q)
	}
	return out
}

func quantileOf(snap []int64, q float64) int64 {
	if len(snap) == 0 {
		return 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	return sortedQuantile(snap, q)
}

func sortedQuantile(sorted []int64, q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Merge folds o's current sample window into h (each sample re-observed),
// plus o's out-of-window count and sum so Count/Sum stay whole-history
// accurate. Merging is snapshot-level: samples o already rotated out
// contribute to Count/Sum but not to quantiles, exactly as they no longer
// do in o itself.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	snap := o.window()
	var snapSum int64
	for _, v := range snap {
		h.Observe(v)
		snapSum += v
	}
	if extra := o.count.Load() - int64(len(snap)); extra > 0 {
		h.count.Add(extra)
		h.sum.Add(o.sum.Load() - snapSum)
	}
}
