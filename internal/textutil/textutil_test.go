package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"How many cards?", []string{"how", "many", "cards"}},
		{"molecule TR024", []string{"molecule", "tr024"}},
		{"POPLATEK TYDNE", []string{"poplatek", "tydne"}},
		{"", nil},
		{"a-b_c", []string{"a", "b_c"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("How many clients opened their accounts in the Jesenik branch?")
	for _, w := range got {
		if IsStopword(w) {
			t.Errorf("stopword %q leaked through", w)
		}
	}
	joined := strings.Join(got, " ")
	for _, want := range []string{"clients", "accounts", "jesenik", "branch"} {
		if !strings.Contains(joined, want) {
			t.Errorf("ContentWords missing %q: %v", want, got)
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"schools":  "school",
		"opened":   "open",
		"issuing":  "issu",
		"cities":   "city",
		"boxes":    "box",
		"class":    "class",
		"magnet":   "magnet",
		"accounts": "account",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"restricted", "Restricted", 1},
		{"same", "same", 0},
		{"fremont", "freemont", 1},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Metric properties of edit distance: identity, symmetry, triangle
// inequality (on short strings to keep quick fast).
func TestEditDistanceMetricProperties(t *testing.T) {
	clip := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	f := func(a, b, c string) bool {
		a, b, c = clip(a), clip(b), clip(c)
		dab := EditDistance(a, b)
		dba := EditDistance(b, a)
		if dab != dba {
			return false
		}
		if EditDistance(a, a) != 0 {
			return false
		}
		return EditDistance(a, c) <= dab+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimilarity(t *testing.T) {
	if Similarity("abc", "abc") != 1 {
		t.Error("identical strings have similarity 1")
	}
	if Similarity("", "") != 1 {
		t.Error("empty-empty similarity is 1")
	}
	if s := Similarity("Fremont", "fremont"); s != 1 {
		t.Errorf("case-insensitive similarity: %v", s)
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint similarity = %v, want 0", s)
	}
}

func TestSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 10 {
			a = a[:10]
		}
		if len(b) > 10 {
			b = b[:10]
		}
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	s, n := LongestCommonSubstring("POPLATEK TYDNE", "weekly POPLATEK")
	if s != "poplatek" || n != 8 {
		t.Errorf("LCS = %q/%d, want poplatek/8", s, n)
	}
	_, n = LongestCommonSubstring("", "abc")
	if n != 0 {
		t.Errorf("LCS with empty = %d", n)
	}
	s, n = LongestCommonSubstring("abc", "abc")
	if s != "abc" || n != 3 {
		t.Errorf("LCS identical = %q/%d", s, n)
	}
}

// LCS length is bounded by both input lengths and the result is a substring
// of both (case-insensitively).
func TestLCSProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 15 {
			a = a[:15]
		}
		if len(b) > 15 {
			b = b[:15]
		}
		s, n := LongestCommonSubstring(a, b)
		la, lb := len([]rune(strings.ToLower(a))), len([]rune(strings.ToLower(b)))
		if n > la || n > lb {
			return false
		}
		if n == 0 {
			return s == ""
		}
		return strings.Contains(strings.ToLower(a), s) && strings.Contains(strings.ToLower(b), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNGrams(t *testing.T) {
	grams := NGrams("ab", 3)
	want := []string{" ab", "ab "}
	if !reflect.DeepEqual(grams, want) {
		t.Errorf("NGrams = %v, want %v", grams, want)
	}
	if NGrams("x", 0) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestNormalizeIdent(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"FreeMealCount", []string{"free", "meal", "count"}},
		{"free_meal_count", []string{"free", "meal", "count"}},
		{"Free Meal Count", []string{"free", "meal", "count"}},
		{"CDSCode", []string{"cds", "code"}},
		{"eye_colour_id", []string{"eye", "colour", "id"}},
		{"NumTstTakr", []string{"num", "tst", "takr"}},
		{"HCT", []string{"hct"}},
	}
	for _, c := range cases {
		if got := NormalizeIdent(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("NormalizeIdent(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
