// Package textutil provides the lexical text-processing primitives shared
// by the SEED pipeline and the text-to-SQL baselines: tokenisation,
// stop-word filtering, a light stemmer, Levenshtein edit distance, longest
// common substring, and character n-grams.
//
// The SEED paper relies on these in two places: sample SQL execution uses
// LIKE patterns plus edit distance to find database values similar to
// question keywords (§III-B), and CodeS retrieves matched values with a
// combination of BM25 and the longest-common-substring method (§IV-C3).
package textutil

import (
	"strings"
	"unicode"
)

// stopwords is a compact English stop-word list tuned for question text;
// schema-ish terms (count, number, ...) are deliberately kept.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"at": true, "to": true, "for": true, "and": true, "or": true, "is": true,
	"are": true, "was": true, "were": true, "be": true, "been": true,
	"what": true, "which": true, "who": true, "whom": true, "whose": true,
	"how": true, "many": true, "much": true, "please": true, "list": true,
	"show": true, "give": true, "me": true, "all": true, "with": true,
	"that": true, "this": true, "those": true, "these": true, "do": true,
	"does": true, "did": true, "have": true, "has": true, "had": true,
	"by": true, "from": true, "as": true, "their": true, "there": true,
	"than": true, "then": true, "it": true, "its": true, "down": true,
	"out": true, "between": true, "among": true, "per": true, "each": true,
	"least": true, "most": true, "more": true, "name": true, "names": true,
}

// Tokenize lower-cases s and splits it into alphanumeric word tokens.
// Punctuation separates tokens; digits stay attached to adjacent letters
// only when contiguous (so "TR024" stays one token).
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// ContentWords tokenises s and removes stop words.
func ContentWords(s string) []string {
	var out []string
	for _, w := range Tokenize(s) {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	return out
}

// IsStopword reports whether the lower-case token w is a stop word.
func IsStopword(w string) bool { return stopwords[strings.ToLower(w)] }

// synonymTable is a compact world-knowledge dictionary: the lexical
// equivalences an LLM brings to value matching (the paper's Table III
// synonym-knowledge category: "female refers to gender = 'F'" answers a
// question about "women").
var synonymTable = map[string][]string{
	"women":     {"female", "f"},
	"woman":     {"female", "f"},
	"girls":     {"female", "f"},
	"ladies":    {"female", "f"},
	"female":    {"f", "women"},
	"men":       {"male", "m"},
	"man":       {"male", "m"},
	"boys":      {"male", "m"},
	"gentlemen": {"male", "m"},
	"male":      {"m", "men"},
	"weekly":    {"week"},
	"monthly":   {"month"},
	"yearly":    {"year", "annual"},
	"annual":    {"year", "yearly"},
	"official":  {"true", "t"},
	"full":      {"true", "t"},
	"biggest":   {"largest", "most"},
	"debt":      {"owing"},
}

// Synonyms returns known lexical equivalents of the lower-cased word, or
// nil when none are recorded.
func Synonyms(w string) []string { return synonymTable[strings.ToLower(w)] }

// Stem applies a light suffix-stripping stemmer sufficient for matching
// question words against schema identifiers (schools -> school,
// opened -> open, issuing -> issu).
func Stem(w string) string {
	w = strings.ToLower(w)
	switch {
	case len(w) > 4 && strings.HasSuffix(w, "ies"):
		return w[:len(w)-3] + "y"
	case len(w) > 3 && strings.HasSuffix(w, "ing"):
		return w[:len(w)-3]
	case len(w) > 3 && strings.HasSuffix(w, "ed"):
		return w[:len(w)-2]
	case len(w) > 3 && strings.HasSuffix(w, "es"):
		return w[:len(w)-2]
	case len(w) > 2 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss"):
		return w[:len(w)-1]
	default:
		return w
	}
}

// EditDistance computes the Levenshtein distance between a and b
// (unit costs, full dynamic program, O(len(a)*len(b))).
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Similarity converts edit distance to a [0,1] similarity:
// 1 - dist/max(len). Case-insensitive. Empty-vs-empty is 1.
func Similarity(a, b string) float64 {
	a, b = strings.ToLower(a), strings.ToLower(b)
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(EditDistance(a, b))/float64(maxLen)
}

// LongestCommonSubstring returns the longest contiguous substring common to
// a and b (case-insensitive), together with its length in runes.
func LongestCommonSubstring(a, b string) (string, int) {
	ra := []rune(strings.ToLower(a))
	rb := []rune(strings.ToLower(b))
	if len(ra) == 0 || len(rb) == 0 {
		return "", 0
	}
	best, bestEnd := 0, 0
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
					bestEnd = i
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return string(ra[bestEnd-best : bestEnd]), best
}

// NGrams returns the character n-grams of s (lower-cased, including
// word-boundary markers) used by the embedding substrate.
func NGrams(s string, n int) []string {
	if n <= 0 {
		return nil
	}
	padded := " " + strings.ToLower(s) + " "
	runes := []rune(padded)
	if len(runes) < n {
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// NormalizeIdent splits a schema identifier (CamelCase, snake_case or
// space-separated) into lower-case words, so "FreeMealCount" and
// "free_meal_count" both become ["free" "meal" "count"].
func NormalizeIdent(ident string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(ident)
	for i, r := range runes {
		switch {
		case r == '_' || r == ' ' || r == '-' || r == '.':
			flush()
		case unicode.IsUpper(r):
			// Boundary before an upper-case letter that follows a lower-case
			// letter or precedes a lower-case letter in an acronym run.
			if i > 0 && (unicode.IsLower(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]) && unicode.IsUpper(runes[i-1]))) {
				flush()
			}
			cur.WriteRune(r)
		default:
			// Letter/digit boundary.
			if i > 0 && unicode.IsDigit(r) != unicode.IsDigit(runes[i-1]) && cur.Len() > 0 {
				flush()
			}
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
