// Spider descriptions: the paper's §IV-E3 path. Spider ships no
// description files, so SEED first *generates* them (with the revision
// model standing in for DeepSeek-V3) and then produces evidence on top.
//
//	go run ./examples/spider_descriptions
package main

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
)

func main() {
	corpus := dataset.BuildSpider(7)
	pipeline := seed.New(seed.ConfigGPT(), llm.NewSimulator(), corpus)

	db := corpus.DBs["pets_1"]
	fmt.Println("before:", describeState(db.HasDescriptions()))

	if err := pipeline.DescribeDatabase(db); err != nil {
		panic(err)
	}
	fmt.Println("after: ", describeState(db.HasDescriptions()))

	// Show the generated description file for the student table.
	if td, ok := db.Doc("student"); ok {
		fmt.Println("\ngenerated student.csv:")
		fmt.Print(td.CSV())
	}

	// Evidence generation now has value glosses to work from.
	for _, q := range []string{
		"How many female students own pets?",
		"How many students have a dog?",
	} {
		ev, err := pipeline.GenerateEvidence("pets_1", q)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nQ: %s\n  evidence: %s\n", q, ev)
	}
}

func describeState(has bool) string {
	if has {
		return "description files present"
	}
	return "no description files"
}
