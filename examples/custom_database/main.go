// Custom database: apply SEED to a database of your own. This is the
// deployment scenario the paper targets — no hand-written evidence exists,
// and SEED manufactures it from schema, descriptions and values.
//
//	go run ./examples/custom_database
package main

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/seed"
	"repro/internal/sqlengine"
)

func main() {
	// 1. Build a small ticketing database with a cryptic status column.
	eng := sqlengine.NewDatabase("helpdesk")
	eng.MustExec(`CREATE TABLE agent (
		agent_id INTEGER PRIMARY KEY,
		name TEXT,
		team TEXT
	)`)
	eng.MustExec(`CREATE TABLE ticket (
		ticket_id INTEGER PRIMARY KEY,
		agent_id INTEGER,
		status TEXT,
		priority TEXT,
		opened TEXT,
		FOREIGN KEY (agent_id) REFERENCES agent(agent_id)
	)`)
	teams := []string{"Billing", "Network", "Accounts"}
	for i := 1; i <= 9; i++ {
		eng.MustExec(fmt.Sprintf("INSERT INTO agent VALUES (%d, 'Agent %d', '%s')", i, i, teams[i%3]))
	}
	statuses := []string{"O", "P", "C"}
	priorities := []string{"LOW", "MED", "HI"}
	for i := 1; i <= 60; i++ {
		eng.MustExec(fmt.Sprintf("INSERT INTO ticket VALUES (%d, %d, '%s', '%s', '2024-%02d-%02d')",
			i, 1+i%9, statuses[i%3], priorities[(i/3)%3], 1+i%12, 1+i%28))
	}

	// 2. Wrap it with a description file documenting the codes — the
	// kind of metadata a real deployment exports from its data catalog.
	db := schema.NewDB(eng)
	db.SetDoc(&schema.TableDoc{
		Table: "ticket", Description: "support tickets",
		Columns: []schema.ColumnDoc{
			{Column: "ticket_id", FullName: "ticket id", Description: "unique ticket identifier"},
			{Column: "status", FullName: "status", Description: "ticket lifecycle state",
				ValueMap: map[string]string{"O": "open ticket", "P": "pending customer reply", "C": "closed ticket"}},
			{Column: "priority", FullName: "priority", Description: "triage priority",
				ValueMap: map[string]string{"LOW": "low priority", "MED": "medium priority", "HI": "high priority"}},
			{Column: "opened", FullName: "opened date", Description: "date opened, YYYY-MM-DD"},
		},
	})

	// 3. SEED needs a corpus shell: the database plus (optionally) a
	// training pool for few-shot selection. An empty pool still works —
	// evidence then comes purely from schema analysis and sampling.
	corpus := &dataset.Corpus{
		Name: "helpdesk",
		DBs:  map[string]*schema.DB{"helpdesk": db},
	}
	pipeline := seed.New(seed.ConfigGPT(), llm.NewSimulator(), corpus)

	questions := []string{
		"How many open tickets are there?",
		"How many high priority tickets are pending customer reply?",
		"List the ticket ids of closed tickets handled by the Network team.",
	}
	for _, q := range questions {
		ev, err := pipeline.GenerateEvidence("helpdesk", q)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("Q: %s\n  evidence: %s\n\n", q, ev)
	}
}
