// Quickstart: generate evidence for one question and watch it change what
// a text-to-SQL model produces.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/seed"
	"repro/internal/texttosql"
)

func main() {
	// 1. Build the synthetic BIRD corpus: databases, description files,
	// questions. Everything is deterministic for a given seed.
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})
	client := llm.NewSimulator()

	// 2. Set up SEED (the paper's GPT-variant architecture) and a
	// downstream text-to-SQL model (CodeS-15B).
	pipeline := seed.New(seed.ConfigGPT(), client, corpus)
	codes := texttosql.NewCodeS(client, 15)

	// 3. Pick a dev question that needs value-illustration knowledge.
	var ex dataset.Example
	for _, e := range corpus.Dev {
		if e.DB == "financial" && len(e.Atoms) > 1 {
			ex = e
			break
		}
	}
	db := corpus.DBs[ex.DB]
	fmt.Println("question:", ex.Question)

	// 4. Without evidence, the model has to guess the cryptic codes.
	sqlNone, err := codes.Generate(texttosql.Task{Example: ex, DB: db})
	must(err)
	fmt.Println("\nwithout evidence:\n ", sqlNone)

	// 5. SEED generates evidence from the schema, description files and
	// sampled values — no human in the loop. The traced form also returns
	// an EvidenceTrace: the pipeline runs as a stage DAG (sampling and
	// few-shot selection in parallel after keyword extraction, schema
	// summarization overlapping both), and the trace records each stage's
	// wall time, token spend and whether a stage memo answered.
	ev, trace, err := pipeline.GenerateEvidenceTraced(context.Background(), ex.DB, ex.Question)
	must(err)
	fmt.Println("\nSEED evidence:\n ", ev)
	fmt.Println("\nhow it was made (stage | wall | tokens | memo):")
	for _, st := range trace.Stages {
		memo := ""
		if st.CacheHit {
			memo = "  <- memo hit"
		}
		fmt.Printf("  %-18s %6dus %6d tok%s\n", st.Stage, st.WallMicros, st.Tokens, memo)
	}
	fmt.Printf("  whole run: %dus wall for %dus of stage time (%.2fx overlap)\n",
		trace.WallMicros, trace.SerialMicros, trace.Overlap())

	sqlSeed, err := codes.Generate(texttosql.Task{Example: ex, DB: db, Evidence: ev})
	must(err)
	fmt.Println("\nwith SEED evidence:\n ", sqlSeed)

	// 6. Execute both against the database and compare with the gold
	// query — the EX metric in miniature.
	gold := run(db, ex.GoldSQL)
	fmt.Println("\ngold result:    ", gold)
	fmt.Println("no-evidence run:", run(db, sqlNone))
	fmt.Println("SEED run:       ", run(db, sqlSeed))
}

// run executes sql and renders the first rows compactly.
func run(db *schema.DB, sql string) string {
	rows, err := db.Engine.Query(sql)
	if err != nil {
		return "error: " + err.Error()
	}
	var parts []string
	for i, r := range rows.Data {
		if i >= 3 {
			parts = append(parts, "...")
			break
		}
		var cells []string
		for _, v := range r {
			cells = append(cells, v.AsText())
		}
		parts = append(parts, strings.Join(cells, "|"))
	}
	return fmt.Sprintf("%d row(s): %s", len(rows.Data), strings.Join(parts, "; "))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
