// Evidence audit: reproduce the paper's Figure 2 analysis — survey the
// dev split's human-style evidence for missing and erroneous entries, then
// show how correcting the erroneous pairs lifts a fine-tuned model
// (Table II in miniature).
//
//	go run ./examples/evidence_audit
package main

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/texttosql"
)

func main() {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})

	audit := dataset.AuditDefects(corpus.Dev)
	total := len(corpus.Dev)
	fmt.Printf("dev pairs: %d\n", total)
	fmt.Printf("missing evidence:   %d (%.2f%%)\n", audit[dataset.DefectMissing],
		100*float64(audit[dataset.DefectMissing])/float64(total))
	var erroneous []dataset.Example
	for _, e := range corpus.Dev {
		switch e.Defect {
		case dataset.DefectNone, dataset.DefectMissing:
		default:
			erroneous = append(erroneous, e)
		}
	}
	fmt.Printf("erroneous evidence: %d (%.2f%%)\n", len(erroneous),
		100*float64(len(erroneous))/float64(total))
	for _, dt := range dataset.ErroneousTypes() {
		if audit[dt] > 0 {
			fmt.Printf("  %-28s %d\n", dt.String(), audit[dt])
		}
	}

	// Show one defective pair next to its corrected form.
	for _, e := range erroneous {
		fmt.Printf("\nexample (%s):\n  Q: %s\n  defective: %s\n  corrected: %s\n",
			e.Defect, e.Question, e.Evidence, e.CleanEvidence)
		break
	}

	// Measure the damage: CodeS on the erroneous pairs, before and after
	// correction.
	client := llm.NewSimulator()
	runner := eval.NewRunner(corpus)
	gen := texttosql.NewCodeS(client, 15)
	bad := runner.Evaluate(gen, erroneous, eval.ProvidedEvidence)
	good := runner.Evaluate(gen, erroneous, eval.CleanEvidenceOf)
	fmt.Printf("\n%s on the %d erroneous pairs:\n", gen.Name(), len(erroneous))
	fmt.Printf("  defective evidence: EX %.2f%%\n", bad.EX)
	fmt.Printf("  corrected evidence: EX %.2f%% (%+.2f)\n", good.EX, good.EX-bad.EX)
}
