// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation section (see DESIGN.md §4 for the experiment
// index). Each benchmark prints the reproduced artefact once; the timing
// measures the full regeneration cost (corpus reuse included).
//
//	go test -bench=. -benchmem
//
// Heavy tables sample the dev split under -short; run without -short for
// the full-split numbers recorded in EXPERIMENTS.md.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/evserve"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/seed"
	"repro/internal/texttosql"
)

var (
	envOnce  sync.Once
	benchEnv *experiments.Env
)

func sharedEnv() *experiments.Env {
	envOnce.Do(func() { benchEnv = experiments.NewEnv(7) })
	return benchEnv
}

// printOnce renders the artefact on the first iteration only, so -bench
// output stays readable while timing remains accurate.
func printOnce(b *testing.B, i int, artefact string) {
	b.Helper()
	if i == 0 {
		fmt.Println(artefact)
	}
}

func devSample(b *testing.B) int {
	if testing.Short() {
		return 4
	}
	return 1
}

func BenchmarkFig2EvidenceAudit(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Fig2(env).Render())
	}
}

func BenchmarkTable1ErrorSamples(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Table1(env).Render())
	}
}

func BenchmarkTable2EvidenceCorrection(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Table2(env).Render())
	}
}

func BenchmarkTable3EvidenceCategories(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Table3(env).Render())
	}
}

func BenchmarkTable4BIRD(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Table4(env, devSample(b)).Render())
	}
}

func BenchmarkTable5Spider(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Table5(env).Render())
	}
}

func BenchmarkTable6EvidenceExamples(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Table6(env).Render())
	}
}

func BenchmarkTable7Revised(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Table7(env, devSample(b)).Render())
	}
}

func BenchmarkFig3PipelineTrace(b *testing.B) {
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Fig3Trace(env))
	}
}

// --- Component ablation benchmarks (DESIGN.md design-choice probes) ---

// BenchmarkAblationSeedGeneration measures the per-question cost of the
// full SEED pipeline, the number the paper's practicality claim rests on.
func BenchmarkAblationSeedGeneration(b *testing.B) {
	env := sharedEnv()
	p := seed.New(seed.ConfigGPT(), env.Client, env.BIRD)
	dev := env.BIRD.Dev
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := dev[i%len(dev)]
		if _, err := p.GenerateEvidence(e.DB, e.Question); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUnitTester isolates the cost of CHESS's candidate
// voting versus single-candidate generation.
func BenchmarkAblationUnitTester(b *testing.B) {
	env := sharedEnv()
	client := llm.NewSimulator()
	single := texttosql.NewGenerator(texttosql.Options{
		DisplayName: "single", Model: "gpt-4o-mini", Candidates: 1,
	}, client)
	voted := texttosql.NewGenerator(texttosql.Options{
		DisplayName: "voted", Model: "gpt-4o-mini", Candidates: 3, UnitTest: true,
	}, client)
	dev := env.BIRD.Dev
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := dev[i%len(dev)]
			if _, err := single.Generate(texttosql.Task{Example: e, DB: env.BIRD.DBs[e.DB]}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("voted3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := dev[i%len(dev)]
			if _, err := voted.Generate(texttosql.Task{Example: e, DB: env.BIRD.DBs[e.DB]}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Evidence-service benchmarks (the evserve subsystem) ---

// BenchmarkEvserveColdVsWarm contrasts a full pipeline run (cold) with a
// cache hit (warm) for the same requests. The warm path must come out at
// least an order of magnitude faster — that ratio is the whole case for
// fronting the pipeline with the service.
func BenchmarkEvserveColdVsWarm(b *testing.B) {
	env := sharedEnv()
	p := seed.New(seed.ConfigGPT(), env.Client, env.BIRD)
	dev := env.BIRD.Dev
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := dev[i%len(dev)]
			if _, err := p.GenerateEvidence(e.DB, e.Question); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		svc := evserve.New(evserve.Options{Variant: "bench", Generate: p.GenerateEvidence})
		defer svc.Close()
		ctx := context.Background()
		for _, e := range dev {
			if _, err := svc.Generate(ctx, e.DB, e.Question); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := dev[i%len(dev)]
			if _, err := svc.Generate(ctx, e.DB, e.Question); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvserveWorkerScaling measures cold batch throughput of
// GenerateAll across pool sizes. Each iteration uses a fresh cache so every
// request pays for generation; the pipeline is shared (it is concurrency-
// safe and its construction cost is not what is being measured). Simulated
// generation is pure CPU, so throughput scales with pool size only up to
// GOMAXPROCS — on a single-core machine the curve is flat; see
// evserve.BenchmarkWorkerScalingLatencyBound for the latency-bound curve.
func BenchmarkEvserveWorkerScaling(b *testing.B) {
	env := sharedEnv()
	p := seed.New(seed.ConfigGPT(), env.Client, env.BIRD)
	dev := env.BIRD.Dev
	n := len(dev)
	if n > 64 {
		n = 64
	}
	reqs := make([]evserve.Request, n)
	for i, e := range dev[:n] {
		reqs[i] = evserve.Request{DB: e.DB, Question: e.Question}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				svc := evserve.New(evserve.Options{
					Variant:  "bench",
					Generate: p.GenerateEvidence,
					Workers:  workers,
				})
				if _, err := svc.GenerateAll(context.Background(), reqs); err != nil {
					b.Fatal(err)
				}
				svc.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkAblationCorpusBuild measures synthetic corpus generation,
// including gold-query validation against the SQL engine.
func BenchmarkAblationCorpusBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := dataset.BuildBIRD(dataset.BIRDOptions{Seed: uint64(7 + i)})
		if len(c.Dev) == 0 {
			b.Fatal("empty corpus")
		}
	}
}
